//! The estimation-throughput benchmark and its CI regression gate
//! (`BENCH_throughput.json`).
//!
//! Measures the sweep pipeline's hot path on a fixed N=8 client
//! population (the engine-scenario distances, TRACK-style 12-band
//! subsets and full-plan ACQUIRE sweeps) in three ways:
//!
//! * `solver_reference` — a literal transcription of the **pre-refactor**
//!   ISTA inner loop: dense forward operator, fresh `Vec`s every
//!   iteration. This is the recorded pre-refactor baseline the pipeline
//!   must beat.
//! * `solver_pipeline` — [`chronos_core::ista::solve_planned_into`] over
//!   a warm scratch (sparse-aware forward, ping-pong buffers; the
//!   lane-chunked SoA kernels when the `simd` feature is on). Its
//!   `speedup_x` against the reference is the headline acceptance
//!   metric (must stay ≥ 3.0×).
//! * `fix_estimate` / `fix_pipeline` — the end-to-end products → ToF
//!   path through the allocating API vs a warm
//!   [`chronos_core::pipeline::SweepPipeline`]; the pipeline row must
//!   report **0 allocs/sweep**.
//! * `pool_spinup` / `fix_pool_w{1,2,4}` — the persistent
//!   [`chronos_core::WorkerRuntime`]: spin-up cost paid **once** (thread
//!   spawns, ring allocation — reported as its own row, not amortized
//!   into the sweep rows), then steady-state fix sweeps batched through
//!   the pool at 1/2/4-way concurrency. The pool rows' alloc column
//!   counts **worker-side** allocation events (via the
//!   [`chronos_core::runtime::set_alloc_probe`] hook) and must stay 0.
//!
//! Wall-clock rates are hardware-dependent, so the regression gate
//! ([`check_throughput_regression`]) gates the *ratios* (`speedup_x`)
//! and the deterministic `allocs_per_sweep` counters; absolute
//! `sweeps_per_sec` columns are informational.
//!
//! Allocation counters only advance when the running binary installs
//! [`crate::alloc_count::CountingAlloc`] as its global allocator (the
//! `bench_throughput` binary does).

use crate::alloc_count::thread_allocations;
use crate::report::Table;
use chronos_core::config::ChronosConfig;
use chronos_core::ista::{solve_planned_into, sparsify, IstaConfig, IstaScratch};
use chronos_core::ndft::TauGrid;
use chronos_core::pipeline::SweepPipeline;
use chronos_core::plan::{NdftPlan, PlanCache};
use chronos_core::reciprocity::BandProduct;
use chronos_core::runtime::{PoolJob, WorkerRuntime};
use chronos_core::tof::{genie_product, TofEstimator, TofFix};
use chronos_math::constants::m_to_ns;
use chronos_math::cvec;
use chronos_math::Complex64;
use chronos_rf::bands::band_plan_5ghz;
use chronos_rf::subset::select_subset;
use std::sync::Arc;
use std::time::Instant;

/// Clients in the fixed population (matches the engine throughput
/// scenario: distances `2.0 + 0.75 i`).
pub const N_CLIENTS: usize = 8;

/// TRACK-mode subset size (the ambiguity knee, see `docs/TRACKING.md`).
pub const SUBSET_BANDS: usize = 12;

/// The headline acceptance floor: the scratch solver must deliver at
/// least this many times the pre-refactor reference's sweeps/s.
/// Re-baselined from 1.2× when the lane-chunked SoA kernels landed
/// (the gate runs with `--features simd`; the scalar tier keeps the
/// exact bitwise contract instead of the throughput floor).
pub const MIN_SOLVER_SPEEDUP: f64 = 3.0;

/// Headers of the `BENCH_throughput` table, in column order.
pub const THROUGHPUT_HEADERS: [&str; 7] = [
    "case",
    "rounds",
    "clients",
    "workers",
    "sweeps_per_sec",
    "allocs_per_sweep",
    "speedup_x",
];

/// One client's deterministic path set: direct path at the engine
/// distance plus a weaker reflection 5 ns later.
fn client_paths(i: usize) -> [(f64, f64); 2] {
    let tau = m_to_ns(2.0 + 0.75 * i as f64);
    [(tau, 1.0), (tau + 5.0, 0.4)]
}

fn products_for(freqs: &[chronos_rf::bands::Band], i: usize) -> Vec<BandProduct> {
    freqs
        .iter()
        .map(|b| genie_product(b.center_hz, &client_paths(i), 2.0))
        .collect()
}

/// The pre-refactor solver, transcribed: dense forward/adjoint over a
/// locally materialized operator matrix, a fresh `Vec` per intermediate
/// per iteration, `clone()`-based FISTA extrapolation. Kept in the bench
/// crate as the recorded baseline the pipeline is gated against; its
/// solutions are asserted value-identical to the pipeline's.
struct DenseReference {
    n: usize,
    m: usize,
    mat: Vec<Complex64>,
}

impl DenseReference {
    fn new(freqs_hz: &[f64], grid: TauGrid) -> Self {
        let mut mat = Vec::with_capacity(freqs_hz.len() * grid.len);
        for f in freqs_hz {
            for k in 0..grid.len {
                let tau_s = grid.tau_at(k) * 1e-9;
                mat.push(Complex64::cis(-2.0 * std::f64::consts::PI * f * tau_s));
            }
        }
        DenseReference {
            n: freqs_hz.len(),
            m: grid.len,
            mat,
        }
    }

    fn forward(&self, p: &[Complex64]) -> Vec<Complex64> {
        self.mat
            .chunks_exact(self.m)
            .map(|row| {
                let mut acc = Complex64::ZERO;
                for (a, b) in row.iter().zip(p.iter()) {
                    acc += *a * *b;
                }
                acc
            })
            .collect()
    }

    fn adjoint(&self, h: &[Complex64]) -> Vec<Complex64> {
        let mut out = vec![Complex64::ZERO; self.m];
        for (row, hi) in self.mat.chunks_exact(self.m).zip(h.iter()) {
            for (o, a) in out.iter_mut().zip(row.iter()) {
                *o += a.conj() * *hi;
            }
        }
        out
    }

    fn solve(&self, h: &[Complex64], cfg: &IstaConfig, op_norm: f64) -> Vec<Complex64> {
        assert_eq!(h.len(), self.n);
        let op_norm = op_norm.max(1e-12);
        let gamma = 1.0 / (2.0 * op_norm * op_norm);
        let atb = self.adjoint(h);
        let alpha = cfg.alpha_rel * cvec::norm_inf(&atb) * 2.0;
        let thresh = gamma * alpha;
        let mut p = vec![Complex64::ZERO; self.m];
        let mut y = p.clone();
        let mut t_momentum = 1.0f64;
        for _ in 0..cfg.max_iters {
            let fy = self.forward(&y);
            let mut resid = fy;
            for (r, hi) in resid.iter_mut().zip(h.iter()) {
                *r -= *hi;
            }
            let grad = self.adjoint(&resid);
            let mut next: Vec<Complex64> = y
                .iter()
                .zip(grad.iter())
                .map(|(yi, gi)| *yi - gi.scale(2.0 * gamma))
                .collect();
            sparsify(&mut next, thresh);
            let delta = cvec::dist2(&next, &p);
            let scale = cvec::norm2(&p) + 1.0;
            if cfg.accelerated {
                let t_next = 0.5 * (1.0 + (1.0 + 4.0 * t_momentum * t_momentum).sqrt());
                let beta = (t_momentum - 1.0) / t_next;
                y = next
                    .iter()
                    .zip(p.iter())
                    .map(|(n, o)| *n + (*n - *o).scale(beta))
                    .collect();
                t_momentum = t_next;
            } else {
                y = next.clone();
            }
            p = next;
            if delta < cfg.epsilon * scale {
                break;
            }
        }
        p
    }
}

/// One measured case.
#[derive(Debug, Clone)]
pub struct ThroughputCase {
    /// Row key.
    pub name: &'static str,
    /// Total concurrency of the case (1 for the inline rows; worker
    /// threads + the helping submitter for the pool rows).
    pub workers: usize,
    /// Completed estimation sweeps per second of wall time.
    pub sweeps_per_sec: f64,
    /// Allocation events per sweep (counting allocator; 0 when the
    /// binary does not install it). Pool rows count worker-side events
    /// through the runtime's alloc probe instead.
    pub allocs_per_sweep: f64,
    /// Rate relative to this case's baseline counterpart, if any.
    pub speedup_x: Option<f64>,
}

/// A steady-state fix estimation submitted to the persistent pool: the
/// same products → ToF path as `fix_pipeline`, run on whichever worker
/// claims it (each worker owns its own warm [`SweepPipeline`]).
struct FixJob<'a> {
    estimator: &'a TofEstimator,
    products: &'a [BandProduct],
}

impl PoolJob for FixJob<'_> {
    type Output = TofFix;

    fn run(&self, pipeline: &mut SweepPipeline) -> TofFix {
        pipeline
            .estimate_fix(self.estimator, self.products)
            .expect("pool fix")
    }
}

/// Times `sweeps` invocations of `body`, returning (sweeps/s,
/// allocs/sweep).
fn measure(sweeps: usize, mut body: impl FnMut(usize)) -> (f64, f64) {
    let a0 = thread_allocations();
    let t0 = Instant::now();
    for i in 0..sweeps {
        body(i);
    }
    let dt = t0.elapsed().as_secs_f64();
    let allocs = (thread_allocations() - a0) as f64 / sweeps as f64;
    (sweeps as f64 / dt.max(1e-9), allocs)
}

/// Runs every case for `rounds` rounds of the N=8 population and returns
/// them in table order.
pub fn throughput_cases(rounds: usize) -> Vec<ThroughputCase> {
    let plan_5g = band_plan_5ghz();
    let subset = select_subset(&plan_5g, SUBSET_BANDS, 100.0);
    let subset_freqs: Vec<f64> = subset.iter().map(|b| b.center_hz).collect();
    let config = ChronosConfig::ideal();
    let grid = TauGrid::span(config.grid_span_ns, config.grid_step_ns);
    let cache = Arc::new(PlanCache::new());
    let estimator = TofEstimator::with_cache(config.clone(), Arc::clone(&cache));
    let ista_cfg = IstaConfig {
        alpha_rel: config.alpha_rel,
        max_iters: config.max_iters,
        epsilon: config.epsilon,
        accelerated: config.accelerated,
    };

    // Per-client TRACK-subset channels (squared-channel genie products)
    // and the shared NDFT plan, prepared outside every timed region.
    let track_products: Vec<Vec<BandProduct>> =
        (0..N_CLIENTS).map(|i| products_for(&subset, i)).collect();
    let track_channels: Vec<Vec<Complex64>> = track_products
        .iter()
        .map(|ps| ps.iter().map(|p| p.value).collect())
        .collect();
    let acquire_products: Vec<Vec<BandProduct>> =
        (0..N_CLIENTS).map(|i| products_for(&plan_5g, i)).collect();
    let plan: Arc<NdftPlan> = cache.ndft_plan(&subset_freqs, grid, config.grid_span_ns);
    let reference = DenseReference::new(&subset_freqs, grid);
    let mut scratch = IstaScratch::new();

    // The reference must agree with the pipeline solver on every client
    // channel — the baseline is only meaningful if it computes the same
    // solution. On the scalar tier this is value equality (the
    // sparse-aware forward skips exact zeros, which can flip a zero's
    // sign but never a value); the SIMD tier reassociates lane sums, so
    // it is held to the tolerance contract instead (see docs/PIPELINE.md).
    for h in &track_channels {
        let want = reference.solve(h, &ista_cfg, plan.op_norm);
        solve_planned_into(&plan, h, &ista_cfg, &mut scratch);
        assert_eq!(want.len(), scratch.solution().len());
        let peak = want.iter().map(|c| c.abs()).fold(0.0f64, f64::max);
        for (a, b) in want.iter().zip(scratch.solution().iter()) {
            if chronos_core::simd_enabled() {
                let drift = (*a - *b).abs();
                assert!(
                    drift <= 1e-6 * peak.max(1e-12),
                    "simd solver drifted from reference: {a} vs {b} (drift {drift:.3e})"
                );
            } else {
                assert!(
                    a.re == b.re && a.im == b.im,
                    "reference diverged from pipeline solver: {a} vs {b}"
                );
            }
        }
    }

    let sweeps = rounds * N_CLIENTS;
    let mut cases = Vec::new();

    // 1 + 2. Pre-refactor solver baseline (dense operator, per-iteration
    // Vecs) vs the warm scratch solver, measured *paired*: the two
    // solvers alternate call-by-call over the same channels, and each
    // (solver, client) pair keeps its *minimum* time over the rounds.
    // Pairing puts bursty host contention (shared CI runners, noisy
    // neighbors) on both sides of the ratio instead of whichever case
    // happened to be in its timing window; the per-pair minimum then
    // discards the bursts a single call absorbed outright, since a
    // burst can't make a deterministic solve *faster*. The headline
    // `speedup_x` stays stable even when the absolute sweeps/s columns
    // (also reported from the minima) wobble with load.
    let mut t_ref_min = [f64::INFINITY; N_CLIENTS];
    let mut t_pipe_min = [f64::INFINITY; N_CLIENTS];
    let mut ref_alloc_events = 0u64;
    let paired_a0 = thread_allocations();
    for i in 0..sweeps {
        let c = i % N_CLIENTS;
        let h = &track_channels[c];
        let a0 = thread_allocations();
        let t0 = Instant::now();
        std::hint::black_box(reference.solve(h, &ista_cfg, plan.op_norm));
        t_ref_min[c] = t_ref_min[c].min(t0.elapsed().as_secs_f64());
        ref_alloc_events += thread_allocations() - a0;
        let t1 = Instant::now();
        std::hint::black_box(solve_planned_into(&plan, h, &ista_cfg, &mut scratch));
        t_pipe_min[c] = t_pipe_min[c].min(t1.elapsed().as_secs_f64());
    }
    let pipe_alloc_events = thread_allocations() - paired_a0 - ref_alloc_events;
    let ref_rate = N_CLIENTS as f64 / t_ref_min.iter().sum::<f64>().max(1e-9);
    let pipe_rate = N_CLIENTS as f64 / t_pipe_min.iter().sum::<f64>().max(1e-9);
    cases.push(ThroughputCase {
        name: "solver_reference",
        workers: 1,
        sweeps_per_sec: ref_rate,
        allocs_per_sweep: ref_alloc_events as f64 / sweeps as f64,
        speedup_x: None,
    });
    cases.push(ThroughputCase {
        name: "solver_pipeline",
        workers: 1,
        sweeps_per_sec: pipe_rate,
        allocs_per_sweep: pipe_alloc_events as f64 / sweeps as f64,
        speedup_x: Some(pipe_rate / ref_rate),
    });

    // 3. End-to-end products → estimate through the allocating API (a
    // fresh scratch arena per call — what a naive integration pays).
    let (est_rate, est_allocs) = measure(sweeps, |i| {
        let ps = &track_products[i % N_CLIENTS];
        std::hint::black_box(estimator.estimate_from_products(ps).expect("estimate"));
    });
    cases.push(ThroughputCase {
        name: "fix_estimate",
        workers: 1,
        sweeps_per_sec: est_rate,
        allocs_per_sweep: est_allocs,
        speedup_x: None,
    });

    // 4. End-to-end products → fix through a warm pipeline: the
    // steady-state TRACK hot path. Must be allocation-free. (No gated
    // speedup on this row: the allocating API shares the same scratch
    // solver internally, so the ratio hovers near 1 and would only gate
    // on timing noise — the allocs column is this row's contract.)
    let mut pipeline = SweepPipeline::new();
    for ps in &track_products {
        pipeline.estimate_fix(&estimator, ps).expect("warmup"); // warm the arena
    }
    let (fix_rate, fix_allocs) = measure(sweeps, |i| {
        let ps = &track_products[i % N_CLIENTS];
        std::hint::black_box(pipeline.estimate_fix(&estimator, ps).expect("fix"));
    });
    cases.push(ThroughputCase {
        name: "fix_pipeline",
        workers: 1,
        sweeps_per_sec: fix_rate,
        allocs_per_sweep: fix_allocs,
        speedup_x: None,
    });

    // 5. ACQUIRE full-plan sweeps through the same warm pipeline (the
    // buffers grow once to the full-plan size, then stay put).
    let acquire_rounds = rounds.div_ceil(2);
    for ps in &acquire_products {
        pipeline.estimate_fix(&estimator, ps).expect("warmup");
    }
    let (acq_rate, acq_allocs) = measure(acquire_rounds * N_CLIENTS, |i| {
        let ps = &acquire_products[i % N_CLIENTS];
        std::hint::black_box(pipeline.estimate_fix(&estimator, ps).expect("fix"));
    });
    cases.push(ThroughputCase {
        name: "acquire_pipeline",
        workers: 1,
        sweeps_per_sec: acq_rate,
        allocs_per_sweep: acq_allocs,
        speedup_x: None,
    });

    // 6. Persistent worker pool. Spin-up (thread spawns + ring) is paid
    // once per runtime lifetime, so it gets its own row instead of
    // being smeared into the per-sweep rates below.
    let jobs: Vec<FixJob> = track_products
        .iter()
        .map(|ps| FixJob {
            estimator: &estimator,
            products: ps,
        })
        .collect();

    let a0 = thread_allocations();
    let t0 = Instant::now();
    let pool_w4 = WorkerRuntime::new(3); // 3 workers + helping submitter
    let spinup_dt = t0.elapsed().as_secs_f64();
    cases.push(ThroughputCase {
        name: "pool_spinup",
        workers: 4,
        sweeps_per_sec: 1.0 / spinup_dt.max(1e-9), // spin-ups (not sweeps) per second
        allocs_per_sweep: (thread_allocations() - a0) as f64,
        speedup_x: None,
    });
    let pool_w2 = WorkerRuntime::new(1); // 1 worker + helping submitter

    // 7. Steady-state fix sweeps through the pool at 1/2/4-way
    // concurrency (the worker-scaling column). The alloc column reads
    // the runtime's worker-side probe: after warm-up every worker owns
    // a grown arena, so the persistent-worker path must report 0. No
    // gated speedup — wall-clock scaling is hardware-dependent (CI may
    // pin a single core); the workers column plus sweeps/s documents it.
    for (name, concurrency, pool) in [
        ("fix_pool_w1", 1usize, None),
        ("fix_pool_w2", 2, Some(&pool_w2)),
        ("fix_pool_w4", 4, Some(&pool_w4)),
    ] {
        let mut local = SweepPipeline::new();
        let (rate, allocs) = match pool {
            None => {
                // Inline baseline: the same jobs on the submitter alone.
                for job in &jobs {
                    std::hint::black_box(job.run(&mut local));
                }
                measure(sweeps, |i| {
                    std::hint::black_box(jobs[i % N_CLIENTS].run(&mut local));
                })
            }
            Some(pool) => {
                // Deterministically warm every worker's arena on every
                // client shape (job→worker assignment in run_batch is
                // racy, so ordinary warm-up batches could leave some
                // (worker, client) pair cold — peak/grouping scratch is
                // data-dependent — and charge its one-time growth to the
                // timed loop), plus the helping submitter's pipeline.
                for job in &jobs {
                    std::hint::black_box(pool.prewarm(job));
                    std::hint::black_box(job.run(&mut local));
                }
                let a0 = pool.worker_allocations();
                let t0 = Instant::now();
                for _ in 0..rounds {
                    std::hint::black_box(pool.run_batch(&jobs, &mut local));
                }
                let dt = t0.elapsed().as_secs_f64();
                (
                    sweeps as f64 / dt.max(1e-9),
                    (pool.worker_allocations() - a0) as f64 / sweeps as f64,
                )
            }
        };
        cases.push(ThroughputCase {
            name,
            workers: concurrency,
            sweeps_per_sec: rate,
            allocs_per_sweep: allocs,
            speedup_x: None,
        });
    }

    cases
}

/// Runs the benchmark and tabulates the regression metrics (the
/// `BENCH_throughput.json` payload).
pub fn throughput_table(rounds: usize) -> Table {
    let mut table = Table::new("BENCH_throughput", &THROUGHPUT_HEADERS);
    for case in throughput_cases(rounds) {
        table.row(&[
            case.name.to_string(),
            format!("{rounds}"),
            format!("{N_CLIENTS}"),
            format!("{}", case.workers),
            format!("{:.1}", case.sweeps_per_sec),
            format!("{:.1}", case.allocs_per_sweep),
            case.speedup_x
                .map(|s| format!("{s:.3}"))
                .unwrap_or_default(),
        ]);
    }
    table
}

/// Compares a fresh `BENCH_throughput` run against the checked-in
/// baseline.
///
/// Wall-clock columns are hardware-dependent, so the gate covers the
/// portable metrics: `speedup_x` must not regress by more than `tol`
/// (and `solver_pipeline`'s must stay above the absolute
/// [`MIN_SOLVER_SPEEDUP`] floor), **any** `allocs_per_sweep` increase
/// fails, and scenario parameters must match exactly. Returns every
/// violated metric.
pub fn check_throughput_regression(
    current: &Table,
    baseline: &Table,
    tol: f64,
) -> Result<(), Vec<String>> {
    let mut failures = Vec::new();
    for (bi, brow) in baseline.rows.iter().enumerate() {
        let key = brow.first().cloned().unwrap_or_default();
        let Some(ci) = current.row_by_key(&key) else {
            failures.push(format!("case {key:?} missing from current run"));
            continue;
        };
        for param in ["rounds", "clients", "workers"] {
            let (base, cur) = (baseline.cell_f64(bi, param), current.cell_f64(ci, param));
            if base != cur {
                failures.push(format!(
                    "{key}/{param}: scenario parameter {cur:?} != baseline {base:?} — \
                     regenerate the baseline with the same settings CI uses \
                     (scripts/check-bench-regression.sh runs --quick)"
                ));
            }
        }
        if let (Some(base), Some(cur)) = (
            baseline.cell_f64(bi, "allocs_per_sweep"),
            current.cell_f64(ci, "allocs_per_sweep"),
        ) {
            if cur > base + 1e-9 {
                failures.push(format!(
                    "{key}/allocs_per_sweep: {cur:.1} exceeds baseline {base:.1} — \
                     the zero-allocation contract regressed"
                ));
            }
        }
        if let (Some(base), Some(cur)) = (
            baseline.cell_f64(bi, "speedup_x"),
            current.cell_f64(ci, "speedup_x"),
        ) {
            if cur < base * (1.0 - tol) {
                failures.push(format!(
                    "{key}/speedup_x: {cur:.3} regressed below baseline {base:.3} (-{:.0}%)",
                    tol * 100.0
                ));
            }
            if key == "solver_pipeline" && cur < MIN_SOLVER_SPEEDUP {
                failures.push(format!(
                    "{key}/speedup_x: {cur:.3} below the absolute {MIN_SOLVER_SPEEDUP}x \
                     acceptance floor"
                ));
            }
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table(speedup: f64, allocs: f64) -> Table {
        let mut t = Table::new("BENCH_throughput", &THROUGHPUT_HEADERS);
        t.row(&[
            "solver_reference".into(),
            "4".into(),
            "8".into(),
            "1".into(),
            "100.0".into(),
            "1600.0".into(),
            String::new(),
        ]);
        t.row(&[
            "solver_pipeline".into(),
            "4".into(),
            "8".into(),
            "1".into(),
            "340.0".into(),
            format!("{allocs:.1}"),
            format!("{speedup:.3}"),
        ]);
        t
    }

    #[test]
    fn regression_checker_directions() {
        let base = sample_table(3.4, 0.0);
        // Identical run passes.
        assert!(check_throughput_regression(&base.clone(), &base, 0.2).is_ok());
        // Speedup collapse fails (relative).
        let errs = check_throughput_regression(&sample_table(2.0, 0.0), &base, 0.2).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("speedup_x")), "{errs:?}");
        // Any alloc increase fails.
        let errs = check_throughput_regression(&sample_table(3.4, 2.0), &base, 0.2).unwrap_err();
        assert!(
            errs.iter().any(|e| e.contains("allocs_per_sweep")),
            "{errs:?}"
        );
        // Below the absolute floor fails even within relative tolerance.
        let lenient = sample_table(3.05, 0.0);
        let errs = check_throughput_regression(&sample_table(2.9, 0.0), &lenient, 0.2).unwrap_err();
        assert!(
            errs.iter().any(|e| e.contains("acceptance floor")),
            "{errs:?}"
        );
        // Missing case fails.
        let empty = Table::new("BENCH_throughput", &THROUGHPUT_HEADERS);
        assert!(check_throughput_regression(&empty, &base, 0.2).is_err());
        // Parameter drift fails (rounds and the worker-scaling column).
        let mut drift = sample_table(3.4, 0.0);
        drift.rows[1][1] = "9".into();
        let errs = check_throughput_regression(&drift, &base, 0.2).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("rounds")), "{errs:?}");
        let mut drift = sample_table(3.4, 0.0);
        drift.rows[1][3] = "2".into();
        let errs = check_throughput_regression(&drift, &base, 0.2).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("workers")), "{errs:?}");
    }

    #[test]
    fn quick_cases_run_and_pipeline_is_allocation_free_capable() {
        // Smoke: one tiny round. (Alloc counters read 0 here because the
        // test harness does not install the counting allocator — the
        // real assertions live in tests/alloc.rs and the bench binary.)
        let cases = throughput_cases(1);
        assert_eq!(cases.len(), 9);
        let solver = cases.iter().find(|c| c.name == "solver_pipeline").unwrap();
        assert!(solver.speedup_x.unwrap() > 1.0, "{:?}", solver);
        // The worker-scaling rows cover 1/2/4-way concurrency and the
        // spin-up row is present exactly once.
        let pool_workers: Vec<usize> = cases
            .iter()
            .filter(|c| c.name.starts_with("fix_pool_w"))
            .map(|c| c.workers)
            .collect();
        assert_eq!(pool_workers, vec![1, 2, 4]);
        assert_eq!(cases.iter().filter(|c| c.name == "pool_spinup").count(), 1);
    }
}
