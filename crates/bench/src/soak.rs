//! Overload soak scenarios: offered load 1–5x medium capacity through
//! the bounded ingestion front-end.
//!
//! These runners back `tests/soak.rs`, the `BENCH_soak.json` baseline
//! (`scripts/check-bench-regression.sh` — CI fails on a >20% regression
//! in admitted-fix rate or shed/fairness drift) and the capacity table
//! in the README. Everything is deterministic given a seed: the
//! admission queue sheds as a pure function of the arrival sequence, so
//! identical seeds replay identical overload behavior.
//!
//! The population per 1x of load: four TRACK walkers (the honest
//! latency-sensitive users, moving so staleness costs accuracy), one
//! ACQUIRE-pinned client (a perpetual cold joiner exercising the
//! priority lane) and one BACKGROUND monitor (the first to be shed).
//! With `max_concurrent = 4` and ~29 ms subset sweeps the four walkers
//! of the 1x population already keep the medium near saturation, so
//! higher multiples are genuine overload, not just more idle clients.

use crate::report::Table;
use chronos_core::config::{ChronosConfig, IngestionConfig};
use chronos_core::engine::WindowReport;
use chronos_core::service::{RangingService, ServiceConfig};
use chronos_core::tracker::TrackerConfig;
use chronos_link::admission::AdmissionConfig;
use chronos_link::time::{Duration, Instant};
use chronos_rf::csi::MeasurementContext;
use chronos_rf::environment::Environment;
use chronos_rf::geometry::Point;
use chronos_rf::hardware::{ideal_device, AntennaArray};

/// Load multiples the full soak matrix runs (1x = near saturation).
pub const SOAK_LOADS: [usize; 4] = [1, 2, 3, 5];

/// TRACK walkers per 1x of load.
pub const WALKERS_PER_LOAD: usize = 4;

/// Walker ground speed, m/s. Fast enough that a stretched TRACK cadence
/// costs visible tracking error (staleness), slow enough that a healthy
/// cadence tracks it tightly.
pub const WALKER_SPEED_MPS: f64 = 0.9;

/// Parameters of one soak run.
#[derive(Debug, Clone)]
pub struct SoakScenarioConfig {
    /// Scenario name (the regression baseline's row key).
    pub name: String,
    /// Master seed.
    pub seed: u64,
    /// Load multiple (population = 6 × `load`).
    pub load: usize,
    /// Continuous windows to run.
    pub windows: usize,
    /// Length of each window.
    pub window_len: Duration,
    /// Worker-thread count (0 = one per core). Results are independent
    /// of this by the engine's seeding contract; `tests/engine.rs`
    /// asserts it stays true with shedding active.
    pub threads: usize,
}

impl SoakScenarioConfig {
    /// The standard scenario at one load multiple.
    pub fn at_load(seed: u64, load: usize, windows: usize, window_ms: u64) -> Self {
        SoakScenarioConfig {
            name: format!("load_{load}x"),
            seed,
            load,
            windows,
            window_len: Duration::from_millis(window_ms),
            threads: 0,
        }
    }

    /// Total clients this scenario runs.
    pub fn clients(&self) -> usize {
        (WALKERS_PER_LOAD + 2) * self.load
    }

    /// Indices of the honest TRACK walkers (joined first).
    pub fn walkers(&self) -> std::ops::Range<usize> {
        0..WALKERS_PER_LOAD * self.load
    }
}

/// The estimator settings soak runs use: the coarse-but-honest grid
/// shared with `tests/engine.rs`, keeping the debug-mode test tier fast
/// while release benches measure the same pipeline.
pub fn soak_chronos() -> ChronosConfig {
    ChronosConfig {
        max_iters: 120,
        grid_step_ns: 0.5,
        ..ChronosConfig::ideal()
    }
}

/// The ingestion policy soak runs use. Sized so the ladder's rungs all
/// show at the matrix's loads: the TRACK lane saturates (deferrals) by
/// 3x, the BACKGROUND lane is tight enough to shed, and the ACQUIRE
/// lane covers every acquire-mode client at the top load — even the
/// cold-start instant where all walkers are still acquiring — while
/// the global margin above `track + background` keeps ACQUIRE
/// admissible when the queue is globally full (displacing background
/// rather than being dropped). A client holds at most one pending op,
/// so "lane depth ≥ client count of that class" is a hard guarantee.
pub fn soak_ingestion() -> IngestionConfig {
    IngestionConfig {
        queue: AdmissionConfig {
            acquire_depth: 32,
            track_depth: 8,
            background_depth: 2,
            global_depth: 36,
        },
        // ~2 subset sweeps of booking ahead; the queue absorbs the rest.
        backlog_limit: Duration::from_millis(60),
        track_stretch_max: 8.0,
        retry_gap: Duration::from_millis(10),
    }
}

/// Builds the soak service at one load multiple: `4 × load` moving
/// TRACK walkers, `load` ACQUIRE-pinned clients and `load` BACKGROUND
/// monitors, all loss-free over an ideal single-antenna link (this
/// bench measures scheduling under pressure, not RF).
pub fn soak_service(cfg: &SoakScenarioConfig) -> RangingService {
    let mut svc = RangingService::new(ServiceConfig {
        threads: cfg.threads,
        ingestion: Some(soak_ingestion()),
        ..ServiceConfig::adaptive(TrackerConfig::default())
    });
    let add = |svc: &mut RangingService, d: f64, tracker: Option<TrackerConfig>| {
        let ctx = soak_ctx(d);
        let id = match tracker {
            Some(t) => svc.add_client_with_tracker(ctx, soak_chronos(), t),
            None => svc.add_client(ctx, soak_chronos()),
        };
        svc.client_mut(id).sweep_cfg.medium.loss_prob = 0.0;
        id
    };
    for i in 0..WALKERS_PER_LOAD * cfg.load {
        add(&mut svc, walker_start_m(i), None);
    }
    for j in 0..cfg.load {
        // A perpetual cold joiner: full ACQUIRE sweeps forever.
        add(
            &mut svc,
            3.0 + 0.2 * j as f64,
            Some(TrackerConfig {
                acquire_fixes: usize::MAX,
                ..TrackerConfig::default()
            }),
        );
    }
    for j in 0..cfg.load {
        let id = add(&mut svc, 2.5 + 0.2 * j as f64, None);
        svc.set_background(id, true);
    }
    svc
}

fn soak_ctx(d: f64) -> MeasurementContext {
    let mut ctx = MeasurementContext::new(
        Environment::free_space(),
        ideal_device(AntennaArray::single()),
        Point::new(0.0, 0.0),
        ideal_device(AntennaArray::laptop()),
        Point::new(d, 0.0),
    );
    ctx.snr.snr_at_1m_db = 60.0;
    ctx
}

/// A walker's starting distance from the AP, meters.
pub fn walker_start_m(i: usize) -> f64 {
    2.0 + 0.35 * i as f64
}

/// A walker's true distance at simulated time `t`.
pub fn walker_distance_m(i: usize, t: Instant) -> f64 {
    walker_start_m(i) + WALKER_SPEED_MPS * t.saturating_since(Instant::ZERO).as_secs_f64()
}

/// One soak run's outcome.
#[derive(Debug, Clone)]
pub struct SoakRun {
    /// The scenario parameters the run used.
    pub cfg: SoakScenarioConfig,
    /// Per-window reports, in order.
    pub reports: Vec<WindowReport>,
}

impl SoakRun {
    /// Windows the accuracy metrics skip while filters converge from
    /// their first ACQUIRE fixes.
    pub const WARMUP_WINDOWS: usize = 1;

    /// Sweep requests offered to the front door over the run.
    pub fn offered(&self) -> u64 {
        self.reports
            .iter()
            .map(|r| r.ingestion.offered.total())
            .sum()
    }

    /// Completed fixes (outcomes with a distance estimate) per offered
    /// request — the capacity observable the regression gate rides on.
    pub fn admitted_fix_rate(&self) -> f64 {
        let offered = self.offered();
        if offered == 0 {
            return 0.0;
        }
        let fixes: usize = self.reports.iter().map(|r| r.completed()).sum();
        fixes as f64 / offered as f64
    }

    /// Total shed requests of one class over the run.
    pub fn shed(&self, class: chronos_link::traffic::TrafficClass) -> u64 {
        self.reports
            .iter()
            .map(|r| r.ingestion.shed.get(class))
            .sum()
    }

    /// Total TRACK deferrals over the run.
    pub fn deferred_track(&self) -> u64 {
        self.reports
            .iter()
            .map(|r| r.ingestion.deferred.track)
            .sum()
    }

    /// Peak global queue depth over the run.
    pub fn queue_peak(&self) -> u64 {
        self.reports
            .iter()
            .map(|r| r.ingestion.queue_peak_total)
            .max()
            .unwrap_or(0)
    }

    /// Peak TRACK cadence stretch over the run.
    pub fn stretch_peak(&self) -> f64 {
        self.reports
            .iter()
            .map(|r| r.ingestion.stretch_peak)
            .fold(1.0, f64::max)
    }

    /// Admitted sweeps per honest walker, in walker order.
    pub fn walker_sweeps(&self) -> Vec<usize> {
        self.cfg
            .walkers()
            .map(|c| {
                self.reports
                    .iter()
                    .flat_map(|r| r.outcomes.iter())
                    .filter(|o| o.client == c)
                    .count()
            })
            .collect()
    }

    /// Max/min ratio of admitted sweeps across honest walkers — the
    /// per-client fairness observable (1.0 = perfectly even service).
    pub fn fairness_ratio(&self) -> f64 {
        let counts = self.walker_sweeps();
        let max = counts.iter().copied().max().unwrap_or(0);
        let min = counts.iter().copied().min().unwrap_or(0);
        if min == 0 {
            f64::INFINITY
        } else {
            max as f64 / min as f64
        }
    }

    /// Mean tracked-distance error of the honest walkers over the
    /// post-warmup windows, meters — the graceful-degradation
    /// observable: under overload this grows with cadence staleness but
    /// must stay bounded.
    pub fn honest_err_m(&self) -> f64 {
        let walkers = self.cfg.walkers();
        let errs: Vec<f64> = self
            .reports
            .iter()
            .skip(Self::WARMUP_WINDOWS)
            .flat_map(|r| {
                r.outcomes
                    .iter()
                    .filter(|o| walkers.contains(&o.client))
                    .filter_map(|o| o.tracked_error_m)
            })
            .collect();
        if errs.is_empty() {
            f64::NAN
        } else {
            errs.iter().sum::<f64>() / errs.len() as f64
        }
    }

    /// Mean gap between an honest walker's consecutive fixes, ms — the
    /// latency cost of cadence degradation.
    pub fn fix_latency_ms(&self) -> f64 {
        let span_ms: f64 = self
            .reports
            .iter()
            .map(|r| r.span().as_secs_f64() * 1e3)
            .sum();
        let fixes: usize = self.walker_sweeps().iter().sum();
        let walkers = self.cfg.walkers().len();
        if fixes == 0 {
            f64::INFINITY
        } else {
            span_ms * walkers as f64 / fixes as f64
        }
    }
}

/// Runs one soak scenario: continuous windows with the walkers moved
/// along their ground-truth tracks between windows (the engine scores
/// each sweep against the geometry at execution time).
pub fn run_soak(cfg: &SoakScenarioConfig) -> SoakRun {
    let mut svc = soak_service(cfg);
    let mut reports = Vec::with_capacity(cfg.windows);
    let mut deadline = Instant::ZERO;
    for w in 0..cfg.windows {
        deadline += cfg.window_len;
        let seed = cfg.seed.wrapping_mul(1000).wrapping_add(w as u64);
        reports.push(svc.run_until(seed, deadline));
        for i in cfg.walkers() {
            svc.client_mut(i).ctx.responder_pos = Point::new(walker_distance_m(i, deadline), 0.0);
        }
    }
    SoakRun {
        cfg: cfg.clone(),
        reports,
    }
}

/// Headers of the `BENCH_soak` table, in column order. Direction rules
/// of the regression checker: `admitted_fix_rate` is higher-is-better
/// via its `rate` substring; `shed_*`, `deferred_track` and
/// `fairness_ratio` are lower-is-better via `shed`/`deferred`/
/// `fairness` (lower-better substrings take precedence, so the `rate`
/// inside `fairness_ratio` is inert); `honest_err_m` via `err`.
/// `load_x`, `clients`, `offered_sweeps` and `queue_peak` carry no
/// direction substring, so they must match the baseline exactly — the
/// run is deterministic, and any drift there is a real scheduling
/// change that deserves a deliberate re-baseline.
pub const SOAK_HEADERS: [&str; 11] = [
    "scenario",
    "load_x",
    "clients",
    "offered_sweeps",
    "admitted_fix_rate",
    "shed_acquire",
    "shed_background",
    "deferred_track",
    "queue_peak",
    "fairness_ratio",
    "honest_err_m",
];

/// Runs the full load matrix and tabulates the overload regression
/// metrics (the `BENCH_soak.json` payload).
pub fn soak_table(seed: u64, windows: usize, window_ms: u64) -> Table {
    use chronos_link::traffic::TrafficClass;
    let mut table = Table::new("BENCH_soak", &SOAK_HEADERS);
    for load in SOAK_LOADS {
        let cfg = SoakScenarioConfig::at_load(seed, load, windows, window_ms);
        let run = run_soak(&cfg);
        table.row(&[
            cfg.name.clone(),
            format!("{load}"),
            format!("{}", cfg.clients()),
            format!("{}", run.offered()),
            format!("{:.3}", run.admitted_fix_rate()),
            format!("{}", run.shed(TrafficClass::Acquire)),
            format!("{}", run.shed(TrafficClass::Background)),
            format!("{}", run.deferred_track()),
            format!("{}", run.queue_peak()),
            format!("{:.3}", run.fairness_ratio()),
            format!("{:.3}", run.honest_err_m()),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_population_layout() {
        let cfg = SoakScenarioConfig::at_load(1, 3, 4, 250);
        assert_eq!(cfg.clients(), 18);
        assert_eq!(cfg.walkers(), 0..12);
        assert_eq!(cfg.name, "load_3x");
    }

    #[test]
    fn ingestion_sizing_keeps_acquire_admissible() {
        // The structural guarantee behind zero ACQUIRE sheds, at the
        // worst instant (cold start: every walker still in ACQUIRE
        // mode). A client holds at most one pending op, so the lane
        // never class-rejects if its depth covers every possible
        // acquire-mode client; and a globally full queue must imply a
        // background entry to displace, which holds when acquire+track
        // alone cannot reach the global bound.
        let q = soak_ingestion().queue;
        let top_load = *SOAK_LOADS.iter().max().unwrap();
        let max_acquire_clients = (WALKERS_PER_LOAD + 1) * top_load;
        assert!(q.acquire_depth >= max_acquire_clients);
        assert!(q.global_depth > max_acquire_clients + q.track_depth);
        assert!(q.global_depth > q.track_depth + q.background_depth);
        assert!(q.acquire_depth + q.track_depth + q.background_depth > q.global_depth);
    }

    #[test]
    fn walkers_actually_move() {
        let d0 = walker_distance_m(0, Instant::ZERO);
        let d1 = walker_distance_m(0, Instant::from_millis(1000));
        assert!((d1 - d0 - WALKER_SPEED_MPS).abs() < 1e-12);
    }

    #[test]
    fn empty_run_metrics_are_sentinels_not_nan_panics() {
        let run = SoakRun {
            cfg: SoakScenarioConfig::at_load(1, 1, 0, 250),
            reports: Vec::new(),
        };
        assert_eq!(run.offered(), 0);
        assert_eq!(run.admitted_fix_rate(), 0.0);
        assert_eq!(run.queue_peak(), 0);
        assert!(run.fairness_ratio().is_infinite());
        assert!(run.fix_latency_ms().is_infinite());
        assert!(run.honest_err_m().is_nan());
    }
}
