//! Zero-subcarrier interpolation (spline vs linear ablation, paper fn. 3)
//! and the phase-voting CRT resolver vs band count (bandwidth ablation).

use chronos_core::crt::{tof_from_channels, CrtConfig};
use chronos_core::phase::{interpolate_h0, Interpolation};
use chronos_math::Complex64;
use chronos_rf::csi::MeasurementContext;
use chronos_rf::environment::Environment;
use chronos_rf::geometry::Point;
use chronos_rf::hardware::{ideal_device, AntennaArray};
use chronos_rf::ofdm::SubcarrierLayout;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::f64::consts::PI;

fn bench_spline(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    let ctx = MeasurementContext::new(
        Environment::free_space(),
        ideal_device(AntennaArray::single()),
        Point::new(0.0, 0.0),
        ideal_device(AntennaArray::single()),
        Point::new(4.0, 0.0),
    );
    let band = chronos_rf::bands::band_by_channel(44).unwrap();
    let layout = SubcarrierLayout::intel5300();
    let cap = ctx
        .measure_pair(&mut rng, &band, &layout, 0, 0, 0.0)
        .forward;

    let mut group = c.benchmark_group("zero_subcarrier");
    group.bench_function("cubic_spline", |b| {
        b.iter(|| std::hint::black_box(interpolate_h0(&cap, Interpolation::CubicSpline, false)))
    });
    group.bench_function("linear", |b| {
        b.iter(|| std::hint::black_box(interpolate_h0(&cap, Interpolation::Linear, false)))
    });
    group.finish();
}

fn bench_crt(c: &mut Criterion) {
    let tau = 17.3;
    let all: Vec<f64> = chronos_rf::bands::band_plan()
        .iter()
        .map(|b| b.center_hz)
        .collect();
    let mut group = c.benchmark_group("crt_voting");
    for n in [5usize, 11, 24, 35] {
        let freqs: Vec<f64> = all.iter().take(n).cloned().collect();
        let hs: Vec<Complex64> = freqs
            .iter()
            .map(|f| Complex64::from_polar(1.0, -2.0 * PI * f * tau * 1e-9))
            .collect();
        group.bench_with_input(BenchmarkId::new("bands", n), &n, |b, _| {
            b.iter(|| {
                std::hint::black_box(tof_from_channels(&freqs, &hs, 1.0, &CrtConfig::default()))
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_spline, bench_crt
}
criterion_main!(benches);
