//! Algorithm 1 performance and the ISTA-vs-FISTA ablation (DESIGN.md §4).

use chronos_core::ista::{debias, solve, IstaConfig};
use chronos_core::ndft::{Ndft, TauGrid};
use chronos_math::Complex64;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::f64::consts::PI;

fn freqs() -> Vec<f64> {
    chronos_rf::bands::band_plan_5ghz()
        .iter()
        .map(|b| b.center_hz)
        .collect()
}

fn measurement(freqs: &[f64]) -> Vec<Complex64> {
    let paths = [(10.4, 1.0), (14.8, 0.7), (22.0, 0.4)];
    freqs
        .iter()
        .map(|f| {
            let mut h = Complex64::ZERO;
            for (tau, a) in paths {
                h += Complex64::from_polar(a, -2.0 * PI * f * tau * 1e-9);
            }
            h
        })
        .collect()
}

fn bench_solver(c: &mut Criterion) {
    let f = freqs();
    let h = measurement(&f);
    let mut group = c.benchmark_group("ista");

    // Grid-size scaling.
    for grid_points in [400usize, 800] {
        let grid = TauGrid {
            start_ns: 0.0,
            step_ns: 200.0 / grid_points as f64,
            len: grid_points,
        };
        let ndft = Ndft::new(&f, grid);
        group.bench_with_input(
            BenchmarkId::new("solve_fista", grid_points),
            &grid_points,
            |b, _| {
                b.iter(|| {
                    std::hint::black_box(solve(
                        &ndft,
                        &h,
                        &IstaConfig {
                            accelerated: true,
                            ..Default::default()
                        },
                    ))
                })
            },
        );
    }

    // Ablation: plain ISTA vs FISTA at the default grid.
    let grid = TauGrid {
        start_ns: 0.0,
        step_ns: 0.25,
        len: 800,
    };
    let ndft = Ndft::new(&f, grid);
    group.bench_function("ablation_plain_ista", |b| {
        b.iter(|| {
            std::hint::black_box(solve(
                &ndft,
                &h,
                &IstaConfig {
                    accelerated: false,
                    ..Default::default()
                },
            ))
        })
    });
    group.bench_function("ablation_fista", |b| {
        b.iter(|| {
            std::hint::black_box(solve(
                &ndft,
                &h,
                &IstaConfig {
                    accelerated: true,
                    ..Default::default()
                },
            ))
        })
    });

    // Debias cost on top of a solve.
    let sol = solve(&ndft, &h, &IstaConfig::default());
    group.bench_function("debias", |b| {
        b.iter(|| std::hint::black_box(debias(&ndft, &h, &sol.p, 12, 3)))
    });

    // Sparsity-weight ablation: heavier alpha converges faster.
    for alpha in [0.05f64, 0.12, 0.3] {
        group.bench_with_input(
            BenchmarkId::new("ablation_alpha", format!("{alpha}")),
            &alpha,
            |b, alpha| {
                b.iter(|| {
                    std::hint::black_box(solve(
                        &ndft,
                        &h,
                        &IstaConfig {
                            alpha_rel: *alpha,
                            ..Default::default()
                        },
                    ))
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_solver
}
criterion_main!(benches);
