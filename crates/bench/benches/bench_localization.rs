//! Trilateration solver cost (Gauss-Newton over antenna circles), and the
//! antenna-separation ablation of paper §10.

use chronos_core::localization::{locate, AntennaRange, LocalizerConfig};
use chronos_rf::geometry::Point;
use chronos_rf::hardware::AntennaArray;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn ranges_for(tx: Point, array: &AntennaArray, noise: f64) -> Vec<AntennaRange> {
    array
        .positions()
        .iter()
        .enumerate()
        .map(|(i, a)| AntennaRange {
            antenna: *a,
            distance_m: a.dist(tx) + noise * if i % 2 == 0 { 1.0 } else { -1.0 },
        })
        .collect()
}

fn bench_localization(c: &mut Criterion) {
    let mut group = c.benchmark_group("localization");
    let cfg = LocalizerConfig::default();
    for (name, array) in [
        ("laptop_30cm", AntennaArray::laptop()),
        ("ap_100cm", AntennaArray::access_point()),
    ] {
        let ranges = ranges_for(Point::new(2.5, 4.0), &array, 0.05);
        group.bench_with_input(BenchmarkId::new("locate", name), &ranges, |b, r| {
            b.iter(|| std::hint::black_box(locate(r, &cfg)))
        });
    }

    // Outlier-heavy case exercises the rejection path.
    let mut dirty = ranges_for(Point::new(1.0, 6.0), &AntennaArray::access_point(), 0.02);
    dirty[2].distance_m += 3.0;
    group.bench_function("locate_with_outlier", |b| {
        b.iter(|| std::hint::black_box(locate(&dirty, &cfg)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_localization
}
criterion_main!(benches);
