//! Multi-client ranging service throughput: shared `PlanCache` + arbited
//! medium versus N independent cold sessions.
//!
//! Reports, per client count N:
//! * `cold_sessions/N` — N plain `ChronosSession`s swept sequentially,
//!   each sweep rebuilding NDFT operators, operator norms, lobe tables
//!   and spline factorizations from scratch (the pre-service design);
//! * `service_shared/N` — the `RangingService` with one warmed
//!   `PlanCache`, single worker thread (isolates the plan-reuse win);
//! * `service_parallel/N` — the same service with one worker per core
//!   (adds the scoped-thread inversion win).
//!
//! The same estimator arithmetic runs in all three; outputs are identical
//! (see `tests/service.rs` for the equivalence assertions). Only the
//! redundant per-sweep plan construction and the serialization of
//! independent clients differ.
//!
//! A fourth variant, `service_adaptive/N`, runs the adaptive scheduler
//! (tracker-driven TRACK-mode subset sweeps) in steady state; besides
//! the host-time numbers, the bench prints the **capacity table** —
//! simulated sweeps per second of airtime, full-sweep vs adaptive — that
//! README's "Adaptive tracking" section quotes. Airtime, not host CPU,
//! is what caps clients-per-AP, so that table is the headline.
//!
//! Finally the bench prints the **epoch-vs-event table**: the lock-step
//! `run_epoch` barrier against the continuous `run_until` engine on a
//! mixed ACQUIRE/TRACK population (half the clients pinned cold), at
//! N ∈ {4, 8, 16}. The barrier makes every TRACK client idle until the
//! slowest ACQUIRE sweep of the round lands; the event engine re-admits
//! them as soon as their subset airtime allows. README's "Continuous
//! sweep engine" section quotes this table.

use chronos_bench::tracking::{capacity_table, mixed_capacity_table, mixed_table};
use chronos_core::config::ChronosConfig;
use chronos_core::service::{RangingService, ServiceConfig};
use chronos_core::session::ChronosSession;
use chronos_core::tracker::TrackerConfig;
use chronos_link::time::Instant;
use chronos_rf::csi::MeasurementContext;
use chronos_rf::environment::Environment;
use chronos_rf::geometry::Point;
use chronos_rf::hardware::{ideal_device, AntennaArray};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn client_ctx(i: usize) -> MeasurementContext {
    let mut ctx = MeasurementContext::new(
        Environment::free_space(),
        ideal_device(AntennaArray::single()),
        Point::new(0.0, 0.0),
        ideal_device(AntennaArray::laptop()),
        Point::new(2.0 + 0.7 * i as f64, 0.5 * i as f64),
    );
    ctx.snr.snr_at_1m_db = 55.0;
    ctx
}

fn cold_sessions(n: usize) -> Vec<ChronosSession> {
    (0..n)
        .map(|i| {
            let mut s = ChronosSession::new(client_ctx(i), ChronosConfig::ideal());
            s.sweep_cfg.medium.loss_prob = 0.0;
            s
        })
        .collect()
}

fn shared_service(n: usize, threads: usize) -> RangingService {
    let cfg = ServiceConfig {
        threads,
        ..Default::default()
    };
    let mut svc = RangingService::new(cfg);
    for i in 0..n {
        let id = svc.add_client(client_ctx(i), ChronosConfig::ideal());
        svc.client_mut(id).sweep_cfg.medium.loss_prob = 0.0;
    }
    // Warm the cache once so steady-state throughput is measured (the
    // first epoch pays the one-time plan construction).
    svc.run_epoch(0xC0FFEE);
    svc
}

fn adaptive_service(n: usize) -> RangingService {
    let mut svc = RangingService::new(ServiceConfig::adaptive(TrackerConfig::default()));
    for i in 0..n {
        let id = svc.add_client(client_ctx(i), ChronosConfig::ideal());
        svc.client_mut(id).sweep_cfg.medium.loss_prob = 0.0;
    }
    // Warm the cache AND converge every tracker into TRACK mode so the
    // bench measures adaptive steady state (subset sweeps).
    for e in 0..3 {
        svc.run_epoch(0xC0FFEE + e);
    }
    svc
}

fn bench_service(c: &mut Criterion) {
    let mut group = c.benchmark_group("service");
    for n in [1usize, 2, 4, 8] {
        let sessions = cold_sessions(n);
        group.bench_with_input(BenchmarkId::new("cold_sessions", n), &n, |b, _| {
            let mut round = 0u64;
            b.iter(|| {
                round += 1;
                let outs: Vec<f64> = sessions
                    .iter()
                    .enumerate()
                    .map(|(i, s)| {
                        let mut rng = StdRng::seed_from_u64(round * 1000 + i as u64);
                        s.sweep(&mut rng, Instant::from_millis(round * 200))
                            .mean_distance_m()
                            .unwrap_or(f64::NAN)
                    })
                    .collect();
                std::hint::black_box(outs)
            })
        });

        let mut svc1 = shared_service(n, 1);
        group.bench_with_input(BenchmarkId::new("service_shared", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(svc1.run_epoch(42).completed()))
        });

        let mut svcp = shared_service(n, 0);
        group.bench_with_input(BenchmarkId::new("service_parallel", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(svcp.run_epoch(42).completed()))
        });

        let mut svca = adaptive_service(n);
        group.bench_with_input(BenchmarkId::new("service_adaptive", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(svca.run_epoch(42).completed()))
        });

        let stats = svcp.plans().stats();
        println!(
            "  [n={n}] plan cache: {} NDFT plans resident, hit rate {:.1}%",
            stats.ndft_entries,
            100.0 * stats.hit_rate()
        );
    }
    group.finish();

    // The capacity figure an AP operator cares about is simulated
    // *airtime* throughput, not host time: print the full-vs-adaptive
    // table (README quotes this).
    println!("\n  capacity (simulated airtime): sweeps/s, full vs adaptive steady state");
    println!(
        "  {:>8} {:>10} {:>10} {:>8} {:>12} {:>12}",
        "clients", "full", "adaptive", "gain", "full MAE", "track MAE"
    );
    for row in capacity_table(&[1, 2, 4, 8], 10, 42) {
        println!(
            "  {:>8} {:>10.1} {:>10.1} {:>7.1}x {:>10.3} m {:>10.3} m",
            row.n_clients,
            row.full_sweeps_per_sec,
            row.adaptive_sweeps_per_sec,
            row.adaptive_sweeps_per_sec / row.full_sweeps_per_sec.max(1e-9),
            row.full_mae_m,
            row.adaptive_mae_m,
        );
    }

    // Epoch barrier vs continuous event engine on a mixed population
    // (half pinned ACQUIRE, half TRACK; 8 interleaved hoppers allowed).
    println!("\n  epoch barrier vs event engine (mixed ACQUIRE/TRACK, sweeps/s of simulated time)");
    println!(
        "{}",
        mixed_table(&mixed_capacity_table(&[4, 8, 16], 42)).render()
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_service
}
criterion_main!(benches);
