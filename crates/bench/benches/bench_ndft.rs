//! NDFT performance: forward/adjoint application and spectral-norm
//! estimation as the delay grid grows.

use chronos_core::ndft::{Ndft, TauGrid};
use chronos_math::Complex64;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::f64::consts::PI;

fn freqs() -> Vec<f64> {
    chronos_rf::bands::band_plan_5ghz()
        .iter()
        .map(|b| b.center_hz)
        .collect()
}

fn measurement(freqs: &[f64]) -> Vec<Complex64> {
    freqs
        .iter()
        .map(|f| Complex64::cis(-2.0 * PI * f * 12.3e-9) + Complex64::cis(-2.0 * PI * f * 31e-9))
        .collect()
}

fn bench_ndft(c: &mut Criterion) {
    let f = freqs();
    let h = measurement(&f);
    let mut group = c.benchmark_group("ndft");
    for grid_points in [200usize, 400, 800, 1600] {
        let grid = TauGrid {
            start_ns: 0.0,
            step_ns: 200.0 / grid_points as f64,
            len: grid_points,
        };
        let ndft = Ndft::new(&f, grid);
        let p: Vec<Complex64> = (0..grid_points)
            .map(|k| Complex64::cis(0.01 * k as f64))
            .collect();
        group.bench_with_input(
            BenchmarkId::new("forward", grid_points),
            &grid_points,
            |b, _| b.iter(|| std::hint::black_box(ndft.forward(&p))),
        );
        group.bench_with_input(
            BenchmarkId::new("adjoint", grid_points),
            &grid_points,
            |b, _| b.iter(|| std::hint::black_box(ndft.adjoint(&h))),
        );
        group.bench_with_input(
            BenchmarkId::new("op_norm", grid_points),
            &grid_points,
            |b, _| b.iter(|| std::hint::black_box(ndft.op_norm(20))),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_ndft
}
criterion_main!(benches);
