//! Full time-of-flight pipeline cost: products -> grouping -> sparse
//! inversion -> first peak, per antenna per sweep.

use chronos_core::config::ChronosConfig;
use chronos_core::tof::{genie_product, TofEstimator};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_pipeline(c: &mut Criterion) {
    let paths = [(11.0, 1.0), (16.0, 0.6), (24.0, 0.4)];
    let products_5g: Vec<_> = chronos_rf::bands::band_plan_5ghz()
        .iter()
        .map(|b| genie_product(b.center_hz, &paths, 2.0))
        .collect();
    let mut products_full = products_5g.clone();
    for b in chronos_rf::bands::band_plan_24ghz() {
        products_full.push(genie_product(b.center_hz, &paths, 8.0));
    }

    let mut group = c.benchmark_group("pipeline");
    let est = TofEstimator::new(ChronosConfig::default());
    group.bench_function("estimate_5ghz_only", |b| {
        b.iter(|| std::hint::black_box(est.estimate_from_products(&products_5g)))
    });
    group.bench_function("estimate_with_24ghz_check", |b| {
        b.iter(|| std::hint::black_box(est.estimate_from_products(&products_full)))
    });

    let est_ideal = TofEstimator::new(ChronosConfig::ideal());
    let products_ideal: Vec<_> = chronos_rf::bands::band_plan()
        .iter()
        .map(|b| genie_product(b.center_hz, &paths, 2.0))
        .collect();
    group.bench_function("estimate_ideal_35_bands", |b| {
        b.iter(|| std::hint::black_box(est_ideal.estimate_from_products(&products_ideal)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_pipeline
}
criterion_main!(benches);
