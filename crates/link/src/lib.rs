//! # chronos-link
//!
//! The link-layer substrate: everything the paper implemented inside the
//! `iwlwifi` driver patch, rebuilt as a deterministic discrete-event
//! simulation (the smoltcp school: explicit time, poll-style state
//! machines, no hidden threads).
//!
//! [`time`] defines nanosecond-resolution simulation [`time::Instant`]s
//! and [`time::Duration`]s. No model in the workspace ever consults a
//! wall clock; every state machine takes `now` as an argument, which is
//! what makes sweeps reproducible enough to assert the paper's 84 ms
//! median hop time (Fig. 9a) in a unit test.
//!
//! [`event`] is the deterministic event queue driving the simulation:
//! a time-ordered heap with stable FIFO tie-breaking, so identical seeds
//! replay identical schedules.
//!
//! [`frame`] gives the hopping protocol's control frames — band
//! advertisements, custom ACKs (the CSI Tool reports no CSI for hardware
//! ACKs, so Chronos injects its own, §4), measurement frames — a compact
//! binary wire format with strict, panic-free parsing over [`bytes`].
//!
//! [`medium`] models the half-duplex channel: preamble + rate airtime,
//! SIFS turnarounds, channel-switch (PLL settling) time, and independent
//! per-frame loss. Loss is what spreads the sweep-time CDF of Fig. 9(a)
//! rightward through retransmissions.
//!
//! [`fsm`] implements the transmitter-driven hop protocol of paper §4 as
//! two poll-style state machines (initiator and responder) with
//! retransmission budgets and the fail-safe revert to a default band
//! that keeps a lossy pair from deadlocking on different channels.
//!
//! [`sweep`] wires the FSMs through the medium over the event queue and
//! drives one full 35-band sweep, reporting duration, per-band
//! measurement timestamps (CSI is synthesized at exactly those
//! instants), and the busy intervals the traffic models consume.
//!
//! [`arbiter`] is the multi-client extension: admission control for N
//! concurrent sweeps on one access point. It staggers starts so hop
//! patterns interleave, caps concurrency, charges overlapping sweeps a
//! per-peer collision loss, and keeps its projections honest with actual
//! completion times — the contention model behind
//! `chronos_core::service`.
//!
//! [`traffic`] models the §12.3 co-existence workloads: a buffered video
//! client and a Reno-style TCP flow sharing the access point with
//! localization sweeps (Fig. 9b, 9c) — and defines the
//! [`traffic::TrafficClass`] priority lattice the admission layer
//! schedules by.
//!
//! [`admission`] is the service's bounded front door: per-class FIFO
//! queues with depth limits, strict priority release, and deterministic
//! displacement — the data structure behind the engine's load-shedding
//! policy under overload.

pub mod admission;
pub mod arbiter;
pub mod event;
pub mod frame;
pub mod fsm;
pub mod medium;
pub mod sweep;
pub mod time;
pub mod traffic;

pub use admission::{AdmissionConfig, AdmissionQueue, ClassCounts, IngestionStats, Offer};
pub use arbiter::{ArbiterConfig, MediumArbiter, SweepGrant};
pub use frame::Frame;
pub use sweep::{run_sweep, SweepConfig, SweepResult};
pub use time::{Duration, Instant};
pub use traffic::TrafficClass;
