//! # chronos-link
//!
//! The link-layer substrate: everything the paper implemented inside the
//! `iwlwifi` driver patch, rebuilt as a deterministic discrete-event
//! simulation (the smoltcp school: explicit time, poll-style state
//! machines, no hidden threads).
//!
//! * [`time`] — nanosecond-resolution simulation [`time::Instant`] and
//!   [`time::Duration`].
//! * [`event`] — a deterministic event queue.
//! * [`frame`] — wire formats for the hopping protocol's control frames
//!   (band advertisements, ACKs, measurement frames) over [`bytes`].
//! * [`medium`] — half-duplex medium: airtime, propagation, frame loss.
//! * [`fsm`] — the transmitter-driven hop protocol of paper §4 as two
//!   state machines (initiator / responder) with retransmissions and the
//!   fail-safe revert to a default band.
//! * [`sweep`] — drives a full 35-band sweep and reports its duration and
//!   per-band measurement opportunities (Fig. 9a).
//! * [`traffic`] — the §12.3 co-existence models: a buffered video client
//!   and a Reno-style TCP flow sharing the access point with localization
//!   sweeps (Fig. 9b, 9c).

pub mod event;
pub mod frame;
pub mod fsm;
pub mod medium;
pub mod sweep;
pub mod time;
pub mod traffic;

pub use frame::Frame;
pub use sweep::{run_sweep, SweepConfig, SweepResult};
pub use time::{Duration, Instant};
