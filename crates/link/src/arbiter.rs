//! Airtime arbitration for many concurrent ranging clients.
//!
//! One Chronos pair owns the medium for ~84 ms per sweep (paper §4, Fig.
//! 9a). A service localizing N clients cannot simply run N sweeps at once
//! on one access point: sweeps that overlap in time contend for airtime.
//! The saving grace is that a sweep *hops* — each pair dwells only 2–3 ms
//! per band — so two overlapping sweeps usually occupy different bands
//! and collide only when their dwells land on the same channel. The
//! [`MediumArbiter`] models exactly that regime:
//!
//! * at most [`ArbiterConfig::max_concurrent`] sweeps may overlap; beyond
//!   that, admission is deferred to the next free slot (clients queue,
//!   which is what an enterprise AP scheduler would do);
//! * admitted sweeps are staggered by a guard interval so their dwell
//!   patterns interleave instead of starting phase-aligned (phase-aligned
//!   hoppers would collide on *every* band);
//! * each admitted sweep pays an extra per-frame loss probability of
//!   [`ArbiterConfig::collision_loss_per_peer`] per concurrent peer —
//!   the chance that a foreign dwell sits on the same band and a frame
//!   collides. The sweep protocol's retransmissions then turn that loss
//!   into the realistic throughput cost of contention (longer sweeps,
//!   occasional fail-safes), the same mechanism the paper's §12.3
//!   co-existence experiments exercise.
//!
//! The arbiter is deterministic and allocation-light: admission is a scan
//! over the currently tracked windows, and completed sweeps report their
//! actual finish so the projection stays honest.

use crate::time::{Duration, Instant};

/// Arbitration policy knobs.
#[derive(Debug, Clone, Copy)]
pub struct ArbiterConfig {
    /// Maximum sweeps allowed to overlap in time. Hop-pattern interleaving
    /// keeps a handful of concurrent hoppers efficient; beyond that the
    /// collision cost outweighs the parallelism.
    pub max_concurrent: usize,
    /// Minimum spacing between the *starts* of overlapping sweeps, so
    /// dwell patterns interleave.
    pub guard: Duration,
    /// Extra per-frame loss probability per concurrent peer (same-band
    /// dwell collisions).
    pub collision_loss_per_peer: f64,
    /// Upper bound on the contention-induced loss increment.
    pub max_extra_loss: f64,
}

impl Default for ArbiterConfig {
    fn default() -> Self {
        ArbiterConfig {
            // A dwell is ~2.4 ms of a ~84 ms sweep: a foreign hopper sits
            // on "our" band ~1/35 of the time, and only a fraction of a
            // dwell is airtime. 1.5% per peer is the measured-order cost.
            max_concurrent: 4,
            guard: Duration::from_millis(3),
            collision_loss_per_peer: 0.015,
            max_extra_loss: 0.25,
        }
    }
}

/// What the arbiter granted one sweep request.
#[derive(Debug, Clone, Copy)]
pub struct SweepGrant {
    /// Token identifying the tracked window (for [`MediumArbiter::complete`]).
    pub token: usize,
    /// Admitted start time (>= the requested time).
    pub start: Instant,
    /// Projected end used for admission of later requests.
    pub expected_end: Instant,
    /// Number of already-admitted sweeps this one overlaps at its start.
    pub concurrent: usize,
    /// Additional per-frame loss probability this sweep must run with.
    pub extra_loss: f64,
}

/// A tracked (projected or actual) sweep window.
#[derive(Debug, Clone, Copy)]
struct Window {
    token: usize,
    start: Instant,
    end: Instant,
}

/// Deterministic airtime admission control for concurrent band sweeps.
#[derive(Debug, Clone)]
pub struct MediumArbiter {
    cfg: ArbiterConfig,
    windows: Vec<Window>,
    next_token: usize,
}

impl MediumArbiter {
    /// Creates an arbiter with the given policy.
    pub fn new(cfg: ArbiterConfig) -> Self {
        MediumArbiter {
            cfg,
            windows: Vec::new(),
            next_token: 0,
        }
    }

    /// Number of tracked windows overlapping the interval `[start, end)`.
    fn overlaps(&self, start: Instant, end: Instant) -> usize {
        self.windows
            .iter()
            .filter(|w| w.start < end && start < w.end)
            .count()
    }

    /// Whether `t` keeps the start-stagger guard against every tracked
    /// window it would overlap; returns the earliest compliant time at or
    /// after `t` otherwise.
    fn respect_guard(&self, t: Instant, expected: Duration) -> Instant {
        let end = t + expected;
        let mut bumped = t;
        for w in &self.windows {
            if w.start < end && bumped < w.end {
                let gap = if bumped >= w.start {
                    bumped.saturating_since(w.start)
                } else {
                    w.start.saturating_since(bumped)
                };
                if gap < self.cfg.guard {
                    bumped = bumped.max(w.start + self.cfg.guard);
                }
            }
        }
        bumped
    }

    /// Admits a sweep expected to take `expected`, starting no earlier
    /// than `not_before`. Deterministically returns the earliest start
    /// satisfying the concurrency cap and stagger guard, plus the
    /// contention loss the sweep must simulate with.
    pub fn admit(&mut self, not_before: Instant, expected: Duration) -> SweepGrant {
        let mut t = not_before;
        // Candidate starts are `not_before` bumped over guard conflicts,
        // or just past the end of an existing window. Bounded scan: each
        // iteration either admits or moves `t` strictly forward to one of
        // finitely many window edges.
        for _ in 0..=self.windows.len() * 2 + 2 {
            t = self.respect_guard(t, expected);
            let end = t + expected;
            if self.overlaps(t, end) < self.cfg.max_concurrent.max(1) {
                break;
            }
            // Defer to the earliest end among currently-overlapping
            // windows (that's when a slot frees up).
            let next_free = self
                .windows
                .iter()
                .filter(|w| w.start < end && t < w.end)
                .map(|w| w.end)
                .min()
                .unwrap_or(end);
            t = next_free.max(t + Duration::from_nanos(1));
        }
        let end = t + expected;
        let concurrent = self.overlaps(t, end);
        let extra_loss =
            (self.cfg.collision_loss_per_peer * concurrent as f64).min(self.cfg.max_extra_loss);
        let token = self.next_token;
        self.next_token += 1;
        self.windows.push(Window {
            token,
            start: t,
            end,
        });
        SweepGrant {
            token,
            start: t,
            expected_end: end,
            concurrent,
            extra_loss,
        }
    }

    /// Books an overheard transmission at exactly `[at, at + airtime)`,
    /// bypassing admission entirely — no deferral, no stagger guard, no
    /// concurrency slot displacement. This models air the AP does not
    /// schedule but still observes busy (a one-way TDoA blast arrives on
    /// the *client's* cadence; the AP just timestamps it): the window
    /// counts toward utilization and overlap queries, but it cannot be
    /// moved and needs no completion report. O(1) per call, which is
    /// what keeps a city-scale blast fan-in (thousands of overheard
    /// transmissions per window per AP) out of the admission scan.
    pub fn book(&mut self, at: Instant, airtime: Duration) {
        let token = self.next_token;
        self.next_token += 1;
        self.windows.push(Window {
            token,
            start: at,
            end: at + airtime,
        });
    }

    /// Reports the actual finish time of a granted sweep so the
    /// projection reflects reality for later admissions.
    pub fn complete(&mut self, token: usize, actual_end: Instant) {
        if let Some(w) = self.windows.iter_mut().find(|w| w.token == token) {
            w.end = actual_end.max(w.start);
        }
    }

    /// Forgets windows that ended at or before `horizon` (epoch cleanup).
    pub fn release_before(&mut self, horizon: Instant) {
        self.windows.retain(|w| w.end > horizon);
    }

    /// Number of windows overlapping instant `t`.
    pub fn active_at(&self, t: Instant) -> usize {
        self.windows
            .iter()
            .filter(|w| w.start <= t && t < w.end)
            .count()
    }

    /// Fraction of `[from, to)` covered by at least one tracked window.
    pub fn utilization(&self, from: Instant, to: Instant) -> f64 {
        let span = to.saturating_since(from).as_nanos();
        if span == 0 {
            return 0.0;
        }
        // Merge-sweep over window edges (windows are few per epoch).
        let mut edges: Vec<(u64, i64)> = Vec::with_capacity(self.windows.len() * 2);
        for w in &self.windows {
            let s = w.start.as_nanos().clamp(from.as_nanos(), to.as_nanos());
            let e = w.end.as_nanos().clamp(from.as_nanos(), to.as_nanos());
            if e > s {
                edges.push((s, 1));
                edges.push((e, -1));
            }
        }
        edges.sort_unstable();
        let mut covered = 0u64;
        let mut depth = 0i64;
        let mut last = from.as_nanos();
        for (at, delta) in edges {
            if depth > 0 {
                covered += at - last;
            }
            last = at;
            depth += delta;
        }
        covered as f64 / span as f64
    }

    /// The latest projected end among tracked windows (epoch horizon).
    pub fn horizon(&self) -> Instant {
        self.windows
            .iter()
            .map(|w| w.end)
            .max()
            .unwrap_or(Instant::ZERO)
    }

    /// Total airtime currently charged across tracked windows — the sum
    /// of per-window durations, counting each sweep exactly once.
    ///
    /// Variable-length plans make this the honest capacity denominator:
    /// a TRACK-mode subset sweep must be charged its own (short) window,
    /// not a full-sweep projection, and [`MediumArbiter::complete`]
    /// *replaces* the projected end rather than appending a second
    /// window, so no sweep is ever double-counted (asserted by tests and
    /// `tests/tracking.rs`).
    pub fn total_tracked_airtime(&self) -> Duration {
        self.windows.iter().fold(Duration::ZERO, |acc, w| {
            acc + w.end.saturating_since(w.start)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Instant {
        Instant::from_millis(n)
    }

    #[test]
    fn first_admission_is_immediate_and_free() {
        let mut arb = MediumArbiter::new(ArbiterConfig::default());
        let g = arb.admit(ms(5), Duration::from_millis(90));
        assert_eq!(g.start, ms(5));
        assert_eq!(g.concurrent, 0);
        assert_eq!(g.extra_loss, 0.0);
    }

    #[test]
    fn overlapping_admissions_stagger_and_pay_contention() {
        let mut arb = MediumArbiter::new(ArbiterConfig::default());
        let d = Duration::from_millis(90);
        let a = arb.admit(ms(0), d);
        let b = arb.admit(ms(0), d);
        let c = arb.admit(ms(0), d);
        // Starts are staggered by at least the guard.
        assert!(b.start.saturating_since(a.start) >= Duration::from_millis(3));
        assert!(c.start.saturating_since(b.start) >= Duration::from_millis(3));
        // Later admissions see more contention.
        assert_eq!(b.concurrent, 1);
        assert_eq!(c.concurrent, 2);
        assert!(b.extra_loss > 0.0 && c.extra_loss > b.extra_loss);
    }

    #[test]
    fn concurrency_cap_defers_admission() {
        let cfg = ArbiterConfig {
            max_concurrent: 2,
            ..Default::default()
        };
        let mut arb = MediumArbiter::new(cfg);
        let d = Duration::from_millis(80);
        let a = arb.admit(ms(0), d);
        let b = arb.admit(ms(0), d);
        let c = arb.admit(ms(0), d);
        // The third sweep cannot overlap the first two: it starts when
        // one of them ends.
        assert!(c.start >= a.expected_end.min(b.expected_end));
        assert!(c.concurrent < 2);
    }

    #[test]
    fn extra_loss_capped() {
        let cfg = ArbiterConfig {
            max_concurrent: 64,
            collision_loss_per_peer: 0.2,
            max_extra_loss: 0.25,
            ..Default::default()
        };
        let mut arb = MediumArbiter::new(cfg);
        let d = Duration::from_millis(50);
        for _ in 0..5 {
            arb.admit(ms(0), d);
        }
        let g = arb.admit(ms(0), d);
        assert!(g.extra_loss <= 0.25 + 1e-12);
    }

    #[test]
    fn booked_transmissions_bypass_admission_but_count_as_coverage() {
        let cfg = ArbiterConfig {
            max_concurrent: 1,
            ..Default::default()
        };
        let mut arb = MediumArbiter::new(cfg);
        // Saturate the only concurrency slot.
        arb.admit(ms(0), Duration::from_millis(100));
        // An overheard transmission lands at its true instant anyway —
        // no deferral past the in-flight sweep, no guard bump.
        arb.book(ms(10), Duration::from_millis(20));
        assert_eq!(arb.active_at(ms(15)), 2);
        assert_eq!(
            arb.total_tracked_airtime(),
            Duration::from_millis(120),
            "booked airtime must be charged exactly once"
        );
        // Coverage over [0, 100) is still 100%: the booked window lies
        // inside the admitted one.
        assert!((arb.utilization(ms(0), ms(100)) - 1.0).abs() < 1e-12);
        // And it is released like any other elapsed window.
        arb.release_before(ms(30));
        assert_eq!(arb.active_at(ms(15)), 1);
    }

    #[test]
    fn completion_tightens_projection() {
        let cfg = ArbiterConfig {
            max_concurrent: 1,
            ..Default::default()
        };
        let mut arb = MediumArbiter::new(cfg);
        let a = arb.admit(ms(0), Duration::from_millis(100));
        // The sweep actually finished early; the next admission may start
        // at the real end rather than the projection.
        arb.complete(a.token, ms(40));
        let b = arb.admit(ms(0), Duration::from_millis(100));
        assert!(b.start < ms(100), "start {:?}", b.start);
        assert!(b.start >= ms(40));
    }

    #[test]
    fn utilization_and_active_counts() {
        let mut arb = MediumArbiter::new(ArbiterConfig::default());
        let a = arb.admit(ms(0), Duration::from_millis(50));
        assert_eq!(arb.active_at(a.start + Duration::from_millis(1)), 1);
        // One 50 ms window in a 100 ms span = 50% utilization.
        let u = arb.utilization(a.start, a.start + Duration::from_millis(100));
        assert!((u - 0.5).abs() < 0.02, "utilization {u}");
    }

    #[test]
    fn release_before_forgets_old_windows() {
        let mut arb = MediumArbiter::new(ArbiterConfig::default());
        arb.admit(ms(0), Duration::from_millis(10));
        arb.release_before(ms(20));
        assert_eq!(arb.active_at(ms(5)), 0);
        assert_eq!(arb.horizon(), Instant::ZERO);
    }

    #[test]
    fn variable_length_windows_charge_airtime_exactly_once() {
        let mut arb = MediumArbiter::new(ArbiterConfig::default());
        // A full sweep and two subset sweeps of different lengths.
        let a = arb.admit(ms(0), Duration::from_millis(84));
        let b = arb.admit(ms(0), Duration::from_millis(29));
        let c = arb.admit(ms(0), Duration::from_millis(12));
        let projected = arb.total_tracked_airtime();
        assert_eq!(projected, Duration::from_millis(84 + 29 + 12));

        // Completion replaces the projection — it must never add a second
        // window for the same sweep.
        arb.complete(a.token, a.start + Duration::from_millis(90));
        arb.complete(b.token, b.start + Duration::from_millis(25));
        arb.complete(c.token, c.start + Duration::from_millis(12));
        assert_eq!(
            arb.total_tracked_airtime(),
            Duration::from_millis(90 + 25 + 12)
        );
        // Completing twice is idempotent.
        arb.complete(c.token, c.start + Duration::from_millis(12));
        assert_eq!(
            arb.total_tracked_airtime(),
            Duration::from_millis(90 + 25 + 12)
        );
    }

    #[test]
    fn deterministic_admission() {
        let run = || {
            let mut arb = MediumArbiter::new(ArbiterConfig::default());
            (0..6)
                .map(|_| arb.admit(ms(0), Duration::from_millis(84)).start.as_nanos())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
