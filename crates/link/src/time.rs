//! Simulation time: explicit, nanosecond-resolution instants and durations.
//!
//! Like smoltcp, the protocol code never consults a wall clock; every state
//! machine takes `now: Instant` as an argument, which makes the whole stack
//! deterministic and trivially testable.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, measured in nanoseconds since simulation
/// start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Instant(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(u64);

impl Instant {
    /// Simulation start.
    pub const ZERO: Instant = Instant(0);

    /// Constructs from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Instant(ns)
    }

    /// Constructs from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Instant(us * 1_000)
    }

    /// Constructs from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Instant(ms * 1_000_000)
    }

    /// Constructs from (possibly fractional) seconds. Negative values clamp
    /// to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        Instant((s.max(0.0) * 1e9).round() as u64)
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as f64 (for physics handoff).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-9
    }

    /// Milliseconds since simulation start, as f64.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 * 1e-6
    }

    /// Saturating difference: `self - earlier`, zero if `earlier` is later.
    pub fn saturating_since(self, earlier: Instant) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl Duration {
    /// Zero duration.
    pub const ZERO: Duration = Duration(0);

    /// Constructs from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Duration(ns)
    }

    /// Constructs from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Duration(us * 1_000)
    }

    /// Constructs from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Duration(ms * 1_000_000)
    }

    /// Constructs from (possibly fractional) seconds; clamps negatives to 0.
    pub fn from_secs_f64(s: f64) -> Self {
        Duration((s.max(0.0) * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds as f64.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-9
    }

    /// Milliseconds as f64.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 * 1e-6
    }

    /// Scales a duration by a float factor (saturating at 0).
    pub fn mul_f64(self, k: f64) -> Duration {
        Duration((self.0 as f64 * k).max(0.0).round() as u64)
    }
}

impl Add<Duration> for Instant {
    type Output = Instant;
    fn add(self, rhs: Duration) -> Instant {
        Instant(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Instant {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Instant> for Instant {
    type Output = Duration;
    /// # Panics
    /// Panics in debug builds when `rhs` is later than `self`; use
    /// [`Instant::saturating_since`] when ordering is uncertain.
    fn sub(self, rhs: Instant) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for Instant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}us", self.as_micros())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(Instant::from_micros(5).as_nanos(), 5_000);
        assert_eq!(Instant::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(Duration::from_millis(84).as_millis_f64(), 84.0);
        assert!((Instant::from_secs_f64(1.5).as_secs_f64() - 1.5).abs() < 1e-12);
        assert_eq!(Instant::from_secs_f64(-1.0), Instant::ZERO);
    }

    #[test]
    fn arithmetic() {
        let t = Instant::from_millis(10) + Duration::from_micros(500);
        assert_eq!(t.as_nanos(), 10_500_000);
        assert_eq!((t - Instant::from_millis(10)).as_micros(), 500);
        let mut u = Instant::ZERO;
        u += Duration::from_nanos(7);
        assert_eq!(u.as_nanos(), 7);
    }

    #[test]
    fn saturating_since() {
        let early = Instant::from_millis(1);
        let late = Instant::from_millis(3);
        assert_eq!(late.saturating_since(early), Duration::from_millis(2));
        assert_eq!(early.saturating_since(late), Duration::ZERO);
    }

    #[test]
    fn duration_sub_saturates() {
        assert_eq!(
            Duration::from_micros(1) - Duration::from_micros(5),
            Duration::ZERO
        );
    }

    #[test]
    fn ordering() {
        assert!(Instant::from_millis(1) < Instant::from_millis(2));
        assert!(Duration::from_micros(999) < Duration::from_millis(1));
    }

    #[test]
    fn mul_f64() {
        assert_eq!(
            Duration::from_millis(10).mul_f64(0.5),
            Duration::from_millis(5)
        );
        assert_eq!(Duration::from_millis(10).mul_f64(-1.0), Duration::ZERO);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Duration::from_micros(250)), "250us");
        assert_eq!(format!("{}", Duration::from_millis(84)), "84.000ms");
    }
}
