//! Drives a full band sweep through the hop protocol.
//!
//! [`run_sweep`] wires an [`crate::fsm::Initiator`] and
//! [`crate::fsm::Responder`] through the [`crate::medium`] over a
//! deterministic [`crate::event`] queue, sampling frame loss
//! from a seeded RNG. The result records the sweep duration (the Fig. 9a
//! observable), per-band measurement timestamps (consumed by
//! `chronos-core` to synthesize CSI at the right instants), and the busy
//! intervals during which the medium was occupied (consumed by the §12.3
//! traffic models).

use crate::event::EventQueue;
use crate::frame::Frame;
use crate::fsm::{Action, Initiator, ProtocolConfig, Responder, ResponderAction};
use crate::medium::MediumConfig;
use crate::time::{Duration, Instant};
use chronos_rf::bands::Band;
use rand::Rng;

/// Sweep configuration.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// The bands to visit, in order.
    pub plan: Vec<Band>,
    /// Protocol timing knobs.
    pub protocol: ProtocolConfig,
    /// Medium model.
    pub medium: MediumConfig,
    /// Extra per-band frame-loss probability, indexed by plan position —
    /// how selective jamming reaches the link layer (see
    /// `chronos_rf::environment::Attacker::band_loss`). Empty (the
    /// default) means no extra loss anywhere and, critically, draws no
    /// additional randomness: honest sweeps keep their exact RNG stream.
    pub band_loss: Vec<f64>,
}

impl SweepConfig {
    /// The paper's standard sweep: all 35 U.S. bands with default timing.
    pub fn standard() -> Self {
        SweepConfig::with_plan(chronos_rf::bands::band_plan())
    }

    /// A sweep over an explicit band plan (any length ≥ 1) with default
    /// timing — how the adaptive scheduler issues TRACK-mode subset
    /// sweeps. The protocol machinery is plan-length agnostic; only the
    /// airtime scales.
    pub fn with_plan(plan: Vec<Band>) -> Self {
        SweepConfig {
            plan,
            protocol: ProtocolConfig::default(),
            medium: MediumConfig::default(),
            band_loss: Vec::new(),
        }
    }

    /// Loss-free airtime this plan needs, from the protocol and medium
    /// timing model: per band, `measures_per_band` measure/ack exchanges
    /// (each padded by the inter-measure gap), one hop-advert exchange,
    /// and one channel switch. Multi-client admission scales this by a
    /// headroom factor to absorb retransmissions — see
    /// `chronos_core::service::ServiceConfig::admission_headroom`.
    ///
    /// For the standard 35-band plan this lands near the paper's 84 ms
    /// median hop time (Fig. 9a); for a k-band subset it shrinks to
    /// ~k/35 of that, which is exactly the airtime the adaptive tracker
    /// saves per fix.
    pub fn expected_duration(&self) -> Duration {
        let measure = self.medium.airtime(&Frame::Measure { seq: 0 });
        let ack = self.medium.airtime(&Frame::Ack { seq: 0 });
        let advert = self.medium.airtime(&Frame::HopAdvert {
            seq: 0,
            next_channel: 0,
            dwell_us: 0,
        });
        let exchange = measure + self.medium.sifs + ack + self.protocol.measure_gap;
        let hop = advert + self.medium.sifs + ack + self.medium.channel_switch;
        let per_band = exchange.mul_f64(self.protocol.measures_per_band as f64) + hop;
        per_band.mul_f64(self.plan.len() as f64)
    }
}

/// One completed measure/ack exchange.
#[derive(Debug, Clone, Copy)]
pub struct MeasurementOp {
    /// Index into the sweep plan.
    pub band_index: usize,
    /// When the responder captured forward CSI (measure frame arrival).
    pub t_forward: Instant,
    /// When the initiator captured reverse CSI (ack arrival).
    pub t_reverse: Instant,
}

/// Result of a sweep run.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// Sweep start time.
    pub started: Instant,
    /// Time the sweep finished (success or fail-safe).
    pub finished: Instant,
    /// Whether the full plan was covered without fail-safe.
    pub complete: bool,
    /// Completed measurement exchanges, in time order.
    pub measurements: Vec<MeasurementOp>,
    /// Total frames put on the air.
    pub frames_sent: usize,
    /// Frames lost to the medium.
    pub frames_lost: usize,
    /// Intervals during which the initiator's radio was occupied by the
    /// sweep (for the traffic co-existence models).
    pub busy: Vec<(Instant, Instant)>,
}

impl SweepResult {
    /// Sweep duration.
    pub fn duration(&self) -> Duration {
        self.finished.saturating_since(self.started)
    }

    /// Bands with at least one completed measurement.
    pub fn bands_measured(&self, plan_len: usize) -> usize {
        let mut seen = vec![false; plan_len];
        for m in &self.measurements {
            if m.band_index < plan_len {
                seen[m.band_index] = true;
            }
        }
        seen.iter().filter(|s| **s).count()
    }
}

/// Internal event payloads.
enum Ev {
    /// Frame arrives at the responder (already survived loss).
    DeliverToResponder(Frame),
    /// Frame arrives at the initiator.
    DeliverToInitiator { frame: Frame, t_forward: Instant },
    /// Initiator timer.
    InitTimer(u32),
    /// Responder fail-safe poll.
    RespFailsafePoll,
    /// Responder completes a retune to plan index.
    RespRetuned(usize),
    /// Initiator completes a retune.
    InitRetuned(usize),
}

/// Runs one sweep starting at `start`, drawing loss randomness from `rng`.
pub fn run_sweep<R: Rng + ?Sized>(cfg: &SweepConfig, start: Instant, rng: &mut R) -> SweepResult {
    let plan_len = cfg.plan.len();
    let chan_of = {
        let plan = cfg.plan.clone();
        move |idx: usize| plan[idx.min(plan.len() - 1)].channel
    };

    let mut init = Initiator::new(cfg.protocol, plan_len);
    let mut resp = Responder::new(cfg.protocol);
    let mut q: EventQueue<Ev> = EventQueue::new();

    let mut result = SweepResult {
        started: start,
        finished: start,
        complete: false,
        measurements: Vec::new(),
        frames_sent: 0,
        frames_lost: 0,
        busy: Vec::new(),
    };

    // Radio band state: frames only get through when both radios sit on the
    // same plan index.
    let mut init_band = 0usize;
    let mut resp_band = 0usize;
    // The measure frame's forward-CSI timestamp, keyed by seq, so the ack
    // delivery can carry it back.
    let mut pending_forward: Option<(u16, Instant)> = None;

    // Helper: process initiator actions.
    // Implemented as a macro to borrow locals mutably without a closure.
    macro_rules! do_init_actions {
        ($actions:expr, $now:expr) => {
            for act in $actions {
                match act {
                    Action::Send { frame, delay } => {
                        let t_tx = $now + delay;
                        let air = cfg.medium.airtime(&frame);
                        result.frames_sent += 1;
                        result.busy.push((t_tx, t_tx + air));
                        let jam = cfg.band_loss.get(init_band).copied().unwrap_or(0.0);
                        let lost = cfg.medium.is_lost(rng)
                            || init_band != resp_band
                            || (jam > 0.0 && rng.gen::<f64>() < jam);
                        if lost {
                            result.frames_lost += 1;
                        } else {
                            q.schedule(t_tx + air, Ev::DeliverToResponder(frame));
                        }
                    }
                    Action::ArmTimer { at, token } => {
                        q.schedule(at, Ev::InitTimer(token));
                    }
                    Action::Retune { band_index } => {
                        q.schedule(
                            $now + cfg.medium.channel_switch,
                            Ev::InitRetuned(band_index),
                        );
                    }
                    Action::MeasurementDone {
                        band_index,
                        t_forward,
                        t_reverse,
                    } => {
                        result.measurements.push(MeasurementOp {
                            band_index,
                            t_forward,
                            t_reverse,
                        });
                    }
                    Action::SweepComplete => {
                        result.complete = true;
                    }
                    Action::Failsafe => {
                        // Initiator reverts to default band; sweep over.
                    }
                }
            }
        };
    }

    // Kick off.
    let first = init.start(start);
    do_init_actions!(first, start);
    q.schedule(start + cfg.protocol.failsafe, Ev::RespFailsafePoll);

    // Main loop.
    let hard_deadline = start + Duration::from_millis(2_000);
    while let Some((now, ev)) = q.pop() {
        if now > hard_deadline {
            break;
        }
        if init.is_done() || init.is_reverted() {
            result.finished = result.finished.max(now);
            break;
        }
        match ev {
            Ev::DeliverToResponder(frame) => {
                let seq = match &frame {
                    Frame::Measure { seq } | Frame::HopAdvert { seq, .. } => Some(*seq),
                    _ => None,
                };
                if let Some(s) = seq {
                    pending_forward = Some((s, now));
                }
                let actions = resp.on_frame(now, &frame);
                for act in actions {
                    match act {
                        ResponderAction::SendAck { seq } => {
                            let ack = Frame::Ack { seq };
                            let t_tx = now + cfg.medium.sifs;
                            let air = cfg.medium.airtime(&ack);
                            result.frames_sent += 1;
                            result.busy.push((t_tx, t_tx + air));
                            let jam = cfg.band_loss.get(init_band).copied().unwrap_or(0.0);
                            let lost = cfg.medium.is_lost(rng)
                                || init_band != resp_band
                                || (jam > 0.0 && rng.gen::<f64>() < jam);
                            if lost {
                                result.frames_lost += 1;
                            } else {
                                let t_forward = pending_forward
                                    .filter(|(s, _)| *s == seq)
                                    .map(|(_, t)| t)
                                    .unwrap_or(now);
                                q.schedule(
                                    t_tx + air,
                                    Ev::DeliverToInitiator {
                                        frame: ack,
                                        t_forward,
                                    },
                                );
                            }
                        }
                        ResponderAction::RetuneToChannel { channel } => {
                            if let Some(idx) = cfg.plan.iter().position(|b| b.channel == channel) {
                                // Retune after the ack leaves the air.
                                let t_done = now
                                    + cfg.medium.sifs
                                    + cfg.medium.airtime(&Frame::Ack { seq: 0 })
                                    + cfg.medium.channel_switch;
                                q.schedule(t_done, Ev::RespRetuned(idx));
                            }
                        }
                        ResponderAction::Failsafe => {}
                    }
                }
            }
            Ev::DeliverToInitiator { frame, t_forward } => {
                if let Frame::Ack { seq } = frame {
                    let actions = init.on_ack(now, seq, t_forward, &chan_of);
                    do_init_actions!(actions, now);
                    result.finished = now;
                }
            }
            Ev::InitTimer(token) => {
                let actions = init.on_timer(now, token);
                // Patch advert retransmissions: the FSM leaves channel 0 as
                // a placeholder for the driver to fill.
                let patched: Vec<Action> = actions
                    .into_iter()
                    .map(|a| match a {
                        Action::Send {
                            frame:
                                Frame::HopAdvert {
                                    seq,
                                    next_channel: 0,
                                    dwell_us,
                                },
                            delay,
                        } => Action::Send {
                            frame: Frame::HopAdvert {
                                seq,
                                next_channel: chan_of(init.advert_target()),
                                dwell_us,
                            },
                            delay,
                        },
                        other => other,
                    })
                    .collect();
                do_init_actions!(patched, now);
                result.finished = result.finished.max(now);
            }
            Ev::RespFailsafePoll => {
                let actions = resp.on_failsafe_check(now);
                if actions.contains(&ResponderAction::Failsafe) {
                    resp_band = 0;
                    resp.set_band_index(0);
                }
                if !resp.is_reverted() {
                    q.schedule(now + cfg.protocol.failsafe, Ev::RespFailsafePoll);
                }
            }
            Ev::RespRetuned(idx) => {
                resp_band = idx;
                resp.set_band_index(idx);
            }
            Ev::InitRetuned(idx) => {
                init_band = idx;
            }
        }
        if init.is_done() || init.is_reverted() {
            result.finished = result.finished.max(now);
            break;
        }
    }
    if result.finished < result.started {
        result.finished = result.started;
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn lossless_cfg() -> SweepConfig {
        let mut cfg = SweepConfig::standard();
        cfg.medium.loss_prob = 0.0;
        cfg
    }

    #[test]
    fn lossless_sweep_completes_all_bands() {
        let cfg = lossless_cfg();
        let mut rng = StdRng::seed_from_u64(1);
        let r = run_sweep(&cfg, Instant::ZERO, &mut rng);
        assert!(r.complete, "sweep did not complete");
        assert_eq!(r.bands_measured(cfg.plan.len()), 35);
        assert_eq!(
            r.measurements.len(),
            35 * cfg.protocol.measures_per_band as usize
        );
        assert_eq!(r.frames_lost, 0);
    }

    #[test]
    fn sweep_duration_near_84ms() {
        // Fig. 9(a): median hop time 84 ms across the 35 bands.
        let cfg = SweepConfig::standard();
        let mut rng = StdRng::seed_from_u64(2);
        let mut durations = Vec::new();
        for _ in 0..50 {
            let r = run_sweep(&cfg, Instant::ZERO, &mut rng);
            if r.complete {
                durations.push(r.duration().as_millis_f64());
            }
        }
        let med = chronos_math::stats::median(&durations);
        assert!((75.0..95.0).contains(&med), "median sweep {med} ms");
    }

    #[test]
    fn measurements_time_ordered_and_causal() {
        let cfg = lossless_cfg();
        let mut rng = StdRng::seed_from_u64(3);
        let r = run_sweep(&cfg, Instant::from_millis(5), &mut rng);
        for m in &r.measurements {
            assert!(m.t_forward < m.t_reverse, "ack before measure?");
        }
        for w in r.measurements.windows(2) {
            assert!(w[0].t_forward <= w[1].t_forward);
            assert!(w[0].band_index <= w[1].band_index);
        }
    }

    #[test]
    fn forward_reverse_gap_is_tens_of_microseconds() {
        // §7: forward and reverse CSI are captured "within short time
        // separations (tens of microseconds)".
        let cfg = lossless_cfg();
        let mut rng = StdRng::seed_from_u64(4);
        let r = run_sweep(&cfg, Instant::ZERO, &mut rng);
        for m in &r.measurements {
            let gap = m.t_reverse.saturating_since(m.t_forward);
            assert!(gap < Duration::from_micros(200), "gap {gap}");
        }
    }

    #[test]
    fn lossy_sweeps_take_longer_on_average() {
        let mut lossy = SweepConfig::standard();
        lossy.medium.loss_prob = 0.05;
        let clean = lossless_cfg();
        let mut rng = StdRng::seed_from_u64(5);
        let avg = |cfg: &SweepConfig, rng: &mut StdRng| {
            let mut total = 0.0;
            let mut n = 0;
            for _ in 0..30 {
                let r = run_sweep(cfg, Instant::ZERO, rng);
                if r.complete {
                    total += r.duration().as_millis_f64();
                    n += 1;
                }
            }
            total / n as f64
        };
        let t_clean = avg(&clean, &mut rng);
        let t_lossy = avg(&lossy, &mut rng);
        assert!(t_lossy > t_clean, "lossy {t_lossy} <= clean {t_clean}");
    }

    #[test]
    fn heavy_loss_triggers_failsafe_not_hang() {
        let mut cfg = SweepConfig::standard();
        cfg.medium.loss_prob = 0.9;
        let mut rng = StdRng::seed_from_u64(6);
        let r = run_sweep(&cfg, Instant::ZERO, &mut rng);
        assert!(!r.complete);
        // Bounded duration (no infinite loop).
        assert!(r.duration() < Duration::from_millis(2_100));
    }

    #[test]
    fn busy_intervals_cover_sweep() {
        let cfg = lossless_cfg();
        let mut rng = StdRng::seed_from_u64(7);
        let r = run_sweep(&cfg, Instant::ZERO, &mut rng);
        assert!(!r.busy.is_empty());
        // Busy time is a fraction of the sweep (gaps between packets), but
        // spans from near start to near finish.
        let first = r.busy.first().unwrap().0;
        let last = r.busy.last().unwrap().1;
        assert!(first.saturating_since(r.started) < Duration::from_millis(1));
        assert!(r.finished.saturating_since(last) < Duration::from_millis(5));
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = SweepConfig::standard();
        let r1 = run_sweep(&cfg, Instant::ZERO, &mut StdRng::seed_from_u64(42));
        let r2 = run_sweep(&cfg, Instant::ZERO, &mut StdRng::seed_from_u64(42));
        assert_eq!(r1.duration(), r2.duration());
        assert_eq!(r1.measurements.len(), r2.measurements.len());
        assert_eq!(r1.frames_lost, r2.frames_lost);
    }

    #[test]
    fn expected_duration_matches_simulated_sweeps() {
        // The analytic airtime model must land on the simulated lossless
        // sweep duration (it is the same timing arithmetic).
        let cfg = lossless_cfg();
        let mut rng = StdRng::seed_from_u64(21);
        let r = run_sweep(&cfg, Instant::ZERO, &mut rng);
        let predicted = cfg.expected_duration().as_millis_f64();
        let actual = r.duration().as_millis_f64();
        assert!(
            (predicted - actual).abs() / actual < 0.1,
            "predicted {predicted} ms vs simulated {actual} ms"
        );
        // And near the paper's 84 ms figure for the standard plan.
        assert!(
            (75.0..95.0).contains(&predicted),
            "predicted {predicted} ms"
        );
    }

    #[test]
    fn subset_plan_sweeps_scale_airtime_with_band_count() {
        let full = lossless_cfg();
        let mut sub = lossless_cfg();
        sub.plan.truncate(12);
        let ratio = sub.expected_duration().as_secs_f64() / full.expected_duration().as_secs_f64();
        assert!((ratio - 12.0 / 35.0).abs() < 1e-9, "ratio {ratio}");

        // The simulator agrees: a 12-band sweep takes about a third of a
        // 35-band sweep and still completes every band.
        let mut rng = StdRng::seed_from_u64(22);
        let r = run_sweep(&sub, Instant::ZERO, &mut rng);
        assert!(r.complete);
        assert_eq!(r.bands_measured(sub.plan.len()), 12);
        let sim_ratio = r.duration().as_secs_f64()
            / run_sweep(&full, Instant::ZERO, &mut rng)
                .duration()
                .as_secs_f64();
        assert!(
            (0.25..0.45).contains(&sim_ratio),
            "simulated ratio {sim_ratio}"
        );
    }

    #[test]
    fn zero_band_loss_vector_is_draw_free_identical() {
        // A band_loss vector of zeros must not perturb the RNG stream:
        // sweeps are bitwise identical to the empty-vector default.
        let base = SweepConfig::standard();
        let mut zeroed = SweepConfig::standard();
        zeroed.band_loss = vec![0.0; zeroed.plan.len()];
        let r1 = run_sweep(&base, Instant::ZERO, &mut StdRng::seed_from_u64(33));
        let r2 = run_sweep(&zeroed, Instant::ZERO, &mut StdRng::seed_from_u64(33));
        assert_eq!(r1.duration(), r2.duration());
        assert_eq!(r1.frames_lost, r2.frames_lost);
        assert_eq!(r1.measurements.len(), r2.measurements.len());
        for (a, b) in r1.measurements.iter().zip(r2.measurements.iter()) {
            assert_eq!(a.band_index, b.band_index);
            assert_eq!(a.t_forward, b.t_forward);
            assert_eq!(a.t_reverse, b.t_reverse);
        }
    }

    #[test]
    fn fully_jammed_plan_triggers_failsafe() {
        let mut cfg = lossless_cfg();
        cfg.band_loss = vec![0.95; cfg.plan.len()];
        let mut rng = StdRng::seed_from_u64(34);
        let r = run_sweep(&cfg, Instant::ZERO, &mut rng);
        assert!(!r.complete, "95% jam on every band still completed");
        assert!(r.frames_lost > 0);
        assert!(r.duration() < Duration::from_millis(2_100));
    }

    #[test]
    fn selective_jam_costs_frames_only_on_targeted_band() {
        // Jam only the final band: everything before it completes cleanly.
        let mut cfg = lossless_cfg();
        cfg.plan.truncate(8);
        cfg.band_loss = vec![0.0; 8];
        cfg.band_loss[7] = 0.95;
        let mut rng = StdRng::seed_from_u64(35);
        let r = run_sweep(&cfg, Instant::ZERO, &mut rng);
        assert!(r.frames_lost > 0, "jammed band lost nothing");
        assert!(
            r.bands_measured(cfg.plan.len()) >= 7,
            "clean bands were disrupted: {}",
            r.bands_measured(cfg.plan.len())
        );
    }

    #[test]
    fn sweeps_per_second_matches_paper() {
        // Paper §4: "sweeps all Wi-Fi bands in 84 ms (12 times per second)".
        let cfg = lossless_cfg();
        let mut rng = StdRng::seed_from_u64(8);
        let r = run_sweep(&cfg, Instant::ZERO, &mut rng);
        let per_second = 1000.0 / r.duration().as_millis_f64();
        assert!((10.0..14.0).contains(&per_second), "{per_second} sweeps/s");
    }
}
