//! Bounded, class-aware admission queue for the service's front door.
//!
//! Under overload the [`MediumArbiter`](crate::arbiter::MediumArbiter)
//! cannot grant airtime as fast as sweep requests arrive. Without a
//! bounded front door, requests either book the medium arbitrarily far
//! into the future (unbounded latency) or pile up in an unbounded
//! queue. [`AdmissionQueue`] gives the engine a third option: hold a
//! *bounded* number of pending requests per [`TrafficClass`], shed
//! deliberately when the bound is hit, and always release the
//! highest-priority waiter first.
//!
//! The queue itself is a pure, deterministic data structure — no clock,
//! no RNG. Every shed/displace decision is a function of the arrival
//! sequence alone, which is what makes the engine's overload behavior
//! reproducible under the seeding contract: identical offered sequences
//! produce identical admissions, deferrals, and sheds.
//!
//! The shedding ladder (who suffers first as pressure rises) is policy
//! that lives in the engine, not here; the queue only enforces bounds
//! and priority order. The one piece of class-aware policy baked in is
//! *displacement*: when the global bound is hit, a newly offered
//! ACQUIRE may evict the newest waiting BACKGROUND entry rather than be
//! rejected. TRACK never displaces anyone — deferring TRACK is cadence
//! degradation, which the ladder spends *before* background drops.

use crate::traffic::TrafficClass;
use std::collections::VecDeque;

/// Depth limits for an [`AdmissionQueue`].
///
/// Each class has its own bound, plus a global bound across classes.
/// The defaults deliberately sum above `global_depth` so the global
/// bound binds first under mixed load — per-class bounds then only
/// prevent one class from monopolizing the whole queue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionConfig {
    /// Max waiting ACQUIRE requests.
    pub acquire_depth: usize,
    /// Max waiting TRACK requests.
    pub track_depth: usize,
    /// Max waiting BACKGROUND requests.
    pub background_depth: usize,
    /// Max waiting requests across all classes.
    pub global_depth: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            acquire_depth: 64,
            track_depth: 128,
            background_depth: 32,
            global_depth: 192,
        }
    }
}

impl AdmissionConfig {
    /// Depth limit for one class.
    pub fn depth(&self, class: TrafficClass) -> usize {
        match class {
            TrafficClass::Acquire => self.acquire_depth,
            TrafficClass::Track => self.track_depth,
            TrafficClass::Background => self.background_depth,
        }
    }
}

/// Outcome of [`AdmissionQueue::offer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Offer<T> {
    /// The item was enqueued.
    Enqueued,
    /// The item was enqueued, and the contained BACKGROUND item was
    /// evicted to make room (only an ACQUIRE offer can displace).
    Displaced(T),
    /// The queue is full for this item; the item is handed back.
    Rejected(T),
}

/// A bounded multi-class FIFO: per-class queues drained in strict
/// priority order (ACQUIRE > TRACK > BACKGROUND), FIFO within a class.
///
/// Tracks per-class and global high-water marks so a window report can
/// prove "the queue stayed bounded" rather than assert it.
#[derive(Debug, Clone)]
pub struct AdmissionQueue<T> {
    cfg: AdmissionConfig,
    lanes: [VecDeque<T>; 3],
    high_water: [usize; 3],
    high_water_total: usize,
}

impl<T> AdmissionQueue<T> {
    pub fn new(cfg: AdmissionConfig) -> Self {
        AdmissionQueue {
            cfg,
            lanes: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
            high_water: [0; 3],
            high_water_total: 0,
        }
    }

    pub fn config(&self) -> &AdmissionConfig {
        &self.cfg
    }

    /// Waiting requests in one class.
    pub fn len_class(&self, class: TrafficClass) -> usize {
        self.lanes[class.rank()].len()
    }

    /// Waiting requests across all classes.
    pub fn len(&self) -> usize {
        self.lanes.iter().map(|l| l.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.lanes.iter().all(|l| l.is_empty())
    }

    /// Class of the request `pop` would return next, if any.
    pub fn peek_class(&self) -> Option<TrafficClass> {
        TrafficClass::ALL
            .into_iter()
            .find(|c| !self.lanes[c.rank()].is_empty())
    }

    /// Offer a request. Bounds are enforced here; see [`Offer`] for the
    /// possible outcomes. Deterministic: the result depends only on the
    /// current queue contents and the offered class.
    pub fn offer(&mut self, class: TrafficClass, item: T) -> Offer<T> {
        let lane = class.rank();
        if self.lanes[lane].len() >= self.cfg.depth(class) {
            return Offer::Rejected(item);
        }
        if self.len() >= self.cfg.global_depth {
            // Globally full. An ACQUIRE may evict the *newest* waiting
            // BACKGROUND entry (newest, so the oldest background waiter
            // — closest to service — keeps its place). TRACK never
            // displaces: deferring TRACK is the cheaper ladder rung.
            let bg = TrafficClass::Background.rank();
            if class == TrafficClass::Acquire && !self.lanes[bg].is_empty() {
                let victim = self.lanes[bg].pop_back().expect("non-empty");
                self.push(lane, item);
                return Offer::Displaced(victim);
            }
            return Offer::Rejected(item);
        }
        self.push(lane, item);
        Offer::Enqueued
    }

    fn push(&mut self, lane: usize, item: T) {
        self.lanes[lane].push_back(item);
        self.high_water[lane] = self.high_water[lane].max(self.lanes[lane].len());
        self.high_water_total = self.high_water_total.max(self.len());
    }

    /// Release the next request: highest-priority non-empty class,
    /// FIFO within the class.
    pub fn pop(&mut self) -> Option<(TrafficClass, T)> {
        let class = self.peek_class()?;
        let item = self.lanes[class.rank()].pop_front().expect("non-empty");
        Some((class, item))
    }

    /// Per-class high-water marks since the last reset.
    pub fn high_water(&self) -> ClassCounts {
        ClassCounts {
            acquire: self.high_water[0] as u64,
            track: self.high_water[1] as u64,
            background: self.high_water[2] as u64,
        }
    }

    /// Global high-water mark since the last reset.
    pub fn high_water_total(&self) -> usize {
        self.high_water_total
    }

    /// Reset high-water marks to the *current* depths (so a fresh
    /// window starts from what it inherited, not from zero).
    pub fn reset_high_water(&mut self) {
        for (hw, lane) in self.high_water.iter_mut().zip(&self.lanes) {
            *hw = lane.len();
        }
        self.high_water_total = self.len();
    }
}

/// One counter per traffic class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassCounts {
    pub acquire: u64,
    pub track: u64,
    pub background: u64,
}

impl ClassCounts {
    pub fn get(&self, class: TrafficClass) -> u64 {
        match class {
            TrafficClass::Acquire => self.acquire,
            TrafficClass::Track => self.track,
            TrafficClass::Background => self.background,
        }
    }

    pub fn add(&mut self, class: TrafficClass, n: u64) {
        match class {
            TrafficClass::Acquire => self.acquire += n,
            TrafficClass::Track => self.track += n,
            TrafficClass::Background => self.background += n,
        }
    }

    pub fn total(&self) -> u64 {
        self.acquire + self.track + self.background
    }

    /// Component-wise difference (`self - earlier`), for deriving
    /// per-window deltas from cumulative counters.
    pub fn since(&self, earlier: &ClassCounts) -> ClassCounts {
        ClassCounts {
            acquire: self.acquire - earlier.acquire,
            track: self.track - earlier.track,
            background: self.background - earlier.background,
        }
    }
}

/// Ingestion-layer accounting, aggregated per window (or cumulatively
/// by the engine). All counters count *sweep requests*.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct IngestionStats {
    /// Requests that arrived at the front door.
    pub offered: ClassCounts,
    /// Requests granted airtime (handed to the arbiter).
    pub admitted: ClassCounts,
    /// Requests pushed back for a later retry (cadence degradation).
    pub deferred: ClassCounts,
    /// Requests dropped outright.
    pub shed: ClassCounts,
    /// Per-class queue high-water marks over the window.
    pub queue_peak: ClassCounts,
    /// Global queue high-water mark over the window.
    pub queue_peak_total: u64,
    /// Largest TRACK cadence stretch factor applied during the window
    /// (1.0 = no stretch).
    pub stretch_peak: f64,
}

impl IngestionStats {
    /// Counter delta (`self - earlier`); peak fields are copied from
    /// `self` (the caller resets peaks at window boundaries).
    pub fn counters_since(&self, earlier: &IngestionStats) -> IngestionStats {
        IngestionStats {
            offered: self.offered.since(&earlier.offered),
            admitted: self.admitted.since(&earlier.admitted),
            deferred: self.deferred.since(&earlier.deferred),
            shed: self.shed.since(&earlier.shed),
            queue_peak: self.queue_peak,
            queue_peak_total: self.queue_peak_total,
            stretch_peak: self.stretch_peak,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use TrafficClass::*;

    fn small() -> AdmissionConfig {
        AdmissionConfig {
            acquire_depth: 2,
            track_depth: 3,
            background_depth: 2,
            global_depth: 5,
        }
    }

    #[test]
    fn fifo_within_class_priority_across_classes() {
        let mut q = AdmissionQueue::new(small());
        assert_eq!(q.offer(Track, 10), Offer::Enqueued);
        assert_eq!(q.offer(Background, 20), Offer::Enqueued);
        assert_eq!(q.offer(Acquire, 30), Offer::Enqueued);
        assert_eq!(q.offer(Track, 11), Offer::Enqueued);
        assert_eq!(q.pop(), Some((Acquire, 30)));
        assert_eq!(q.pop(), Some((Track, 10)));
        assert_eq!(q.pop(), Some((Track, 11)));
        assert_eq!(q.pop(), Some((Background, 20)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn per_class_bound_rejects() {
        let mut q = AdmissionQueue::new(small());
        assert_eq!(q.offer(Background, 1), Offer::Enqueued);
        assert_eq!(q.offer(Background, 2), Offer::Enqueued);
        assert_eq!(q.offer(Background, 3), Offer::Rejected(3));
        assert_eq!(q.len_class(Background), 2);
    }

    #[test]
    fn global_bound_rejects_track() {
        let mut q = AdmissionQueue::new(small());
        assert_eq!(q.offer(Track, 0), Offer::Enqueued);
        assert_eq!(q.offer(Track, 1), Offer::Enqueued);
        assert_eq!(q.offer(Background, 90), Offer::Enqueued);
        assert_eq!(q.offer(Background, 91), Offer::Enqueued);
        assert_eq!(q.offer(Acquire, 50), Offer::Enqueued);
        assert_eq!(q.len(), 5);
        // Track lane has room (2/3) but global is full: rejected — TRACK
        // never displaces background even when background waiters exist.
        assert_eq!(q.offer(Track, 99), Offer::Rejected(99));
        assert_eq!(q.len_class(Background), 2);
    }

    #[test]
    fn acquire_displaces_newest_background_when_global_full() {
        let mut q = AdmissionQueue::new(small());
        assert_eq!(q.offer(Background, 20), Offer::Enqueued);
        assert_eq!(q.offer(Background, 21), Offer::Enqueued);
        for i in 0..3 {
            assert_eq!(q.offer(Track, i), Offer::Enqueued);
        }
        assert_eq!(q.len(), 5);
        // Newest background (21) is evicted; oldest (20) keeps its place.
        assert_eq!(q.offer(Acquire, 50), Offer::Displaced(21));
        assert_eq!(q.len(), 5);
        assert_eq!(q.len_class(Background), 1);
        assert_eq!(q.pop(), Some((Acquire, 50)));
    }

    #[test]
    fn acquire_rejected_when_global_full_and_no_background() {
        let mut q = AdmissionQueue::new(AdmissionConfig {
            acquire_depth: 8,
            track_depth: 8,
            background_depth: 8,
            global_depth: 3,
        });
        for i in 0..3 {
            assert_eq!(q.offer(Track, i), Offer::Enqueued);
        }
        assert_eq!(q.offer(Acquire, 50), Offer::Rejected(50));
    }

    #[test]
    fn per_class_bound_applies_even_with_global_room() {
        let mut q = AdmissionQueue::new(small());
        assert_eq!(q.offer(Acquire, 1), Offer::Enqueued);
        assert_eq!(q.offer(Acquire, 2), Offer::Enqueued);
        // Acquire lane full: rejected before displacement is considered.
        assert_eq!(q.offer(Background, 9), Offer::Enqueued);
        assert_eq!(q.offer(Acquire, 3), Offer::Rejected(3));
    }

    #[test]
    fn high_water_marks_track_and_reset() {
        let mut q = AdmissionQueue::new(small());
        q.offer(Track, 1);
        q.offer(Track, 2);
        q.offer(Acquire, 3);
        assert_eq!(q.high_water().track, 2);
        assert_eq!(q.high_water().acquire, 1);
        assert_eq!(q.high_water_total(), 3);
        q.pop();
        q.pop();
        q.reset_high_water();
        assert_eq!(q.high_water().track, 1);
        assert_eq!(q.high_water().acquire, 0);
        assert_eq!(q.high_water_total(), 1);
    }

    #[test]
    fn peek_class_matches_pop() {
        let mut q = AdmissionQueue::new(small());
        assert_eq!(q.peek_class(), None);
        q.offer(Background, 1);
        assert_eq!(q.peek_class(), Some(Background));
        q.offer(Track, 2);
        assert_eq!(q.peek_class(), Some(Track));
        q.offer(Acquire, 3);
        assert_eq!(q.peek_class(), Some(Acquire));
        let (c, _) = q.pop().unwrap();
        assert_eq!(c, Acquire);
    }

    #[test]
    fn class_counts_arithmetic() {
        let mut a = ClassCounts::default();
        a.add(Acquire, 3);
        a.add(Track, 5);
        a.add(Background, 1);
        assert_eq!(a.total(), 9);
        assert_eq!(a.get(Track), 5);
        let mut b = a;
        b.add(Track, 2);
        let d = b.since(&a);
        assert_eq!(
            d,
            ClassCounts {
                acquire: 0,
                track: 2,
                background: 0
            }
        );
    }

    #[test]
    fn stats_counters_since_keeps_peaks() {
        let mut start = IngestionStats::default();
        start.offered.add(Track, 4);
        let mut now = start;
        now.offered.add(Track, 6);
        now.queue_peak_total = 7;
        now.stretch_peak = 3.5;
        let d = now.counters_since(&start);
        assert_eq!(d.offered.track, 6);
        assert_eq!(d.queue_peak_total, 7);
        assert!((d.stretch_peak - 3.5).abs() < 1e-12);
    }
}
