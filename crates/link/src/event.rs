//! A deterministic discrete-event queue.
//!
//! Events are ordered by firing time; ties break by insertion order, so two
//! runs with identical inputs produce identical traces — a property every
//! experiment in the harness depends on.

use crate::time::Instant;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A scheduled entry: fire time, tie-break sequence, payload.
struct Entry<E> {
    at: Instant,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A min-heap event queue over payload type `E`.
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    next_seq: u64,
    now: Instant,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: Instant::ZERO,
        }
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// Scheduling in the past is clamped to "now" — the event fires next.
    pub fn schedule(&mut self, at: Instant, event: E) {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { at, seq, event }));
    }

    /// Pops the earliest event, advancing the queue's clock to its fire
    /// time. Returns `None` when empty.
    pub fn pop(&mut self) -> Option<(Instant, E)> {
        let Reverse(entry) = self.heap.pop()?;
        self.now = entry.at;
        Some((entry.at, entry.event))
    }

    /// The current simulation time (the fire time of the last popped
    /// event).
    pub fn now(&self) -> Instant {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Fire time of the next event, if any — lets callers batch
    /// consecutive same-instant events (e.g. simultaneous sweep
    /// admissions) without popping blind.
    pub fn peek_time(&self) -> Option<Instant> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// Pops the next event only if it fires exactly at `t`.
    ///
    /// The batching primitive for draining every event of one instant:
    /// `while let Some(e) = q.pop_if_at(now) { ... }` collects all
    /// simultaneous events without disturbing later ones.
    pub fn pop_if_at(&mut self, t: Instant) -> Option<E> {
        if self.peek_time() == Some(t) {
            self.pop().map(|(_, e)| e)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Instant::from_millis(3), "c");
        q.schedule(Instant::from_millis(1), "a");
        q.schedule(Instant::from_millis(2), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = Instant::from_micros(10);
        for label in ["first", "second", "third"] {
            q.schedule(t, label);
        }
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["first", "second", "third"]);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(Instant::from_millis(5), ());
        assert_eq!(q.now(), Instant::ZERO);
        q.pop();
        assert_eq!(q.now(), Instant::from_millis(5));
    }

    #[test]
    fn past_scheduling_clamps_to_now() {
        let mut q = EventQueue::new();
        q.schedule(Instant::from_millis(10), "late");
        q.pop();
        // Now at t=10ms; scheduling at t=1ms must not rewind time.
        q.schedule(Instant::from_millis(1), "past");
        let (at, e) = q.pop().unwrap();
        assert_eq!(e, "past");
        assert_eq!(at, Instant::from_millis(10));
    }

    #[test]
    fn len_and_peek() {
        let mut q: EventQueue<u32> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(Instant::from_millis(2), 2);
        q.schedule(Instant::from_millis(1), 1);
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(Instant::from_millis(1)));
        // Peeking does not consume.
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn pop_if_at_drains_one_instant_only() {
        let mut q = EventQueue::new();
        let t = Instant::from_millis(2);
        q.schedule(t, "a");
        q.schedule(t, "b");
        q.schedule(Instant::from_millis(3), "later");
        assert_eq!(q.pop_if_at(Instant::from_millis(1)), None);
        let mut batch = Vec::new();
        while let Some(e) = q.pop_if_at(t) {
            batch.push(e);
        }
        assert_eq!(batch, vec!["a", "b"]);
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(Instant::from_millis(3)));
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(Instant::from_millis(1), 1u32);
        let (t1, _) = q.pop().unwrap();
        // Schedule relative to popped time.
        q.schedule(t1 + Duration::from_millis(1), 2u32);
        q.schedule(t1 + Duration::from_micros(500), 3u32);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![3, 2]);
    }
}
