//! Wire formats for the hopping protocol's frames.
//!
//! The paper's driver patch uses packet injection to exchange three kinds of
//! frames: a control packet advertising the next band to hop to, a custom
//! acknowledgment (the CSI Tool does not report CSI for hardware link-layer
//! ACKs, so Chronos injects its own), and measurement packets whose only job
//! is to produce CSI at both ends. We give each a compact binary encoding
//! with strict parsing — malformed bytes must never panic the stack.
//!
//! Layout (all multi-byte fields big-endian):
//!
//! ```text
//! +------+------+----------------+
//! | 0x43 | type | type payload   |    0x43 = 'C' magic
//! +------+------+----------------+
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Magic byte opening every Chronos frame.
pub const MAGIC: u8 = 0x43;

/// Frame type tags.
const T_ADVERT: u8 = 1;
const T_ACK: u8 = 2;
const T_MEASURE: u8 = 3;
const T_DATA: u8 = 4;

/// A protocol frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Transmitter-driven band advertisement: "after this exchange, hop to
    /// `next_channel`" (paper §4). `seq` matches the expected ACK.
    HopAdvert {
        /// Sequence number, echoed by the ACK.
        seq: u16,
        /// The 802.11 channel number to hop to next.
        next_channel: u16,
        /// How long the devices will dwell there, microseconds.
        dwell_us: u32,
    },
    /// Acknowledgment injected from the driver (also signals the hop).
    Ack {
        /// Sequence of the frame being acknowledged.
        seq: u16,
    },
    /// A measurement packet: produces CSI at the receiver; the receiver
    /// answers with an [`Frame::Ack`] that produces CSI at the transmitter.
    Measure {
        /// Sequence number.
        seq: u16,
    },
    /// Opaque foreground data (the §12.3 experiments' video/TCP payloads).
    Data {
        /// Payload length in bytes (payload itself is not simulated).
        len: u16,
    },
}

/// Errors from [`Frame::parse`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// Fewer bytes than the smallest valid frame.
    Truncated,
    /// First byte is not [`MAGIC`].
    BadMagic,
    /// Unknown frame type tag.
    UnknownType(u8),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "frame truncated"),
            FrameError::BadMagic => write!(f, "bad magic byte"),
            FrameError::UnknownType(t) => write!(f, "unknown frame type {t}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl Frame {
    /// Serializes the frame to bytes.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(12);
        b.put_u8(MAGIC);
        match self {
            Frame::HopAdvert {
                seq,
                next_channel,
                dwell_us,
            } => {
                b.put_u8(T_ADVERT);
                b.put_u16(*seq);
                b.put_u16(*next_channel);
                b.put_u32(*dwell_us);
            }
            Frame::Ack { seq } => {
                b.put_u8(T_ACK);
                b.put_u16(*seq);
            }
            Frame::Measure { seq } => {
                b.put_u8(T_MEASURE);
                b.put_u16(*seq);
            }
            Frame::Data { len } => {
                b.put_u8(T_DATA);
                b.put_u16(*len);
            }
        }
        b.freeze()
    }

    /// Parses a frame from bytes. Strict: trailing garbage is tolerated
    /// (radios pad), but short or malformed headers are rejected.
    pub fn parse(mut buf: &[u8]) -> Result<Frame, FrameError> {
        if buf.len() < 2 {
            return Err(FrameError::Truncated);
        }
        let magic = buf.get_u8();
        if magic != MAGIC {
            return Err(FrameError::BadMagic);
        }
        let ty = buf.get_u8();
        match ty {
            T_ADVERT => {
                if buf.remaining() < 8 {
                    return Err(FrameError::Truncated);
                }
                let seq = buf.get_u16();
                let next_channel = buf.get_u16();
                let dwell_us = buf.get_u32();
                Ok(Frame::HopAdvert {
                    seq,
                    next_channel,
                    dwell_us,
                })
            }
            T_ACK => {
                if buf.remaining() < 2 {
                    return Err(FrameError::Truncated);
                }
                Ok(Frame::Ack { seq: buf.get_u16() })
            }
            T_MEASURE => {
                if buf.remaining() < 2 {
                    return Err(FrameError::Truncated);
                }
                Ok(Frame::Measure { seq: buf.get_u16() })
            }
            T_DATA => {
                if buf.remaining() < 2 {
                    return Err(FrameError::Truncated);
                }
                Ok(Frame::Data { len: buf.get_u16() })
            }
            other => Err(FrameError::UnknownType(other)),
        }
    }

    /// On-air size in bytes, including the 802.11 + radiotap overhead the
    /// driver adds (a fixed 48-byte envelope in our model).
    pub fn air_bytes(&self) -> usize {
        let body = match self {
            Frame::HopAdvert { .. } => 10,
            Frame::Ack { .. } => 4,
            Frame::Measure { .. } => 4,
            Frame::Data { len } => 4 + *len as usize,
        };
        body + 48
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_variants() {
        let frames = [
            Frame::HopAdvert {
                seq: 7,
                next_channel: 157,
                dwell_us: 2200,
            },
            Frame::Ack { seq: 7 },
            Frame::Measure { seq: 1234 },
            Frame::Data { len: 1460 },
        ];
        for f in frames {
            let enc = f.encode();
            let dec = Frame::parse(&enc).unwrap();
            assert_eq!(dec, f);
        }
    }

    #[test]
    fn rejects_bad_magic() {
        let mut enc = Frame::Ack { seq: 1 }.encode().to_vec();
        enc[0] = 0xFF;
        assert_eq!(Frame::parse(&enc), Err(FrameError::BadMagic));
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let enc = Frame::HopAdvert {
            seq: 9,
            next_channel: 36,
            dwell_us: 2500,
        }
        .encode();
        for cut in 0..enc.len() {
            let r = Frame::parse(&enc[..cut]);
            assert!(r.is_err(), "accepted a {cut}-byte prefix");
        }
    }

    #[test]
    fn rejects_unknown_type() {
        let bytes = [MAGIC, 0x7E, 0, 0];
        assert_eq!(Frame::parse(&bytes), Err(FrameError::UnknownType(0x7E)));
    }

    #[test]
    fn tolerates_trailing_padding() {
        let mut enc = Frame::Measure { seq: 3 }.encode().to_vec();
        enc.extend_from_slice(&[0u8; 16]);
        assert_eq!(Frame::parse(&enc).unwrap(), Frame::Measure { seq: 3 });
    }

    #[test]
    fn empty_input() {
        assert_eq!(Frame::parse(&[]), Err(FrameError::Truncated));
        assert_eq!(Frame::parse(&[MAGIC]), Err(FrameError::Truncated));
    }

    #[test]
    fn air_bytes_ordering() {
        // Data frames dominate; control frames are tiny.
        let advert = Frame::HopAdvert {
            seq: 0,
            next_channel: 1,
            dwell_us: 0,
        };
        let data = Frame::Data { len: 1460 };
        assert!(advert.air_bytes() < data.air_bytes());
        assert!(Frame::Ack { seq: 0 }.air_bytes() <= advert.air_bytes());
    }

    #[test]
    fn fuzz_parse_never_panics() {
        // Cheap deterministic fuzz: parse every 4-byte pattern of a few
        // generators plus random-ish slices.
        let mut seed = 0x12345678u32;
        for _ in 0..5000 {
            seed = seed.wrapping_mul(1664525).wrapping_add(1013904223);
            let len = (seed % 16) as usize;
            let bytes: Vec<u8> = (0..len)
                .map(|i| (seed.rotate_left(i as u32 * 3) & 0xFF) as u8)
                .collect();
            let _ = Frame::parse(&bytes); // must not panic
        }
    }
}
