//! The transmitter-driven channel-hopping protocol (paper §4) as two
//! explicit state machines.
//!
//! Protocol per band:
//!
//! 1. The **initiator** sends a few `Measure` frames, each answered by an
//!    `Ack`. A completed measure/ack exchange produces CSI at both ends —
//!    forward CSI at the responder, reverse CSI at the initiator — which is
//!    what §7's reciprocity trick consumes. Multiple exchanges per band
//!    enable the averaging of §7 (observation 1).
//! 2. Before switching, the initiator sends a `HopAdvert` naming the next
//!    channel. The responder acks and retunes; the initiator retunes when
//!    the ack arrives.
//! 3. Losses are handled by retransmission. If an advert goes unacked too
//!    many times, the initiator *optimistically hops* (the responder may
//!    have acked and moved on an ack that was then lost) and probes the new
//!    band. As a last resort both sides independently **revert to the
//!    default band** after a fail-safe timeout, exactly as §4 prescribes.
//!
//! The machines are pure: they consume events (`on_frame`, `on_timer`) and
//! emit [`Action`]s; the driver in [`crate::sweep`] owns the event queue,
//! the medium, and the loss process. This keeps every transition unit
//! testable without any queue at all.

use crate::frame::Frame;
use crate::time::{Duration, Instant};

/// What a state machine asks its driver to do.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Transmit a frame on the current band after `delay` (SIFS etc.).
    Send {
        /// Frame to transmit.
        frame: Frame,
        /// Gap before the transmission begins.
        delay: Duration,
    },
    /// Retune the radio to the band at `band_index` in the sweep plan.
    Retune {
        /// Index into the sweep plan.
        band_index: usize,
    },
    /// Arm (replace) the machine's single timer to fire at `at`.
    ArmTimer {
        /// Absolute fire time.
        at: Instant,
        /// Opaque token; stale timer fires are ignored by token mismatch.
        token: u32,
    },
    /// A measure/ack exchange completed on `band_index`.
    MeasurementDone {
        /// Index into the sweep plan.
        band_index: usize,
        /// When the responder received the measure frame (forward CSI).
        t_forward: Instant,
        /// When the initiator received the ack (reverse CSI).
        t_reverse: Instant,
    },
    /// The whole sweep finished successfully.
    SweepComplete,
    /// The machine gave up and reverted to the default band.
    Failsafe,
}

/// Timing/robustness knobs of the protocol.
#[derive(Debug, Clone, Copy)]
pub struct ProtocolConfig {
    /// Measure/ack exchanges per band (averaging depth).
    pub measures_per_band: u16,
    /// Gap between consecutive measure exchanges.
    pub measure_gap: Duration,
    /// Retransmission timeout for measure and advert frames.
    pub rto: Duration,
    /// Max retransmissions of one frame before escalating.
    pub max_retries: u8,
    /// Fail-safe: revert to the default band after this long without any
    /// successful exchange.
    pub failsafe: Duration,
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        ProtocolConfig {
            measures_per_band: 3,
            measure_gap: Duration::from_micros(615),
            rto: Duration::from_micros(400),
            max_retries: 4,
            failsafe: Duration::from_millis(30),
        }
    }
}

/// Initiator-side states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum InitState {
    /// Waiting for the ack of measure exchange number `.0`.
    AwaitMeasureAck(u16),
    /// Waiting for the ack of the hop advert.
    AwaitAdvertAck,
    /// Hopped optimistically; waiting for a probe ack on the new band.
    Probing,
    /// Sweep finished.
    Done,
    /// Reverted to default band.
    Reverted,
}

/// The initiating (transmitter) device of the hop protocol.
#[derive(Debug)]
pub struct Initiator {
    cfg: ProtocolConfig,
    plan_len: usize,
    band_index: usize,
    state: InitState,
    seq: u16,
    retries: u8,
    timer_token: u32,
    /// Time the current measure frame was sent (for t_forward bookkeeping
    /// the driver performs; kept here only for assertions).
    last_measure_sent: Instant,
    sweep_started: Instant,
    last_progress: Instant,
}

impl Initiator {
    /// Creates an initiator for a sweep plan of `plan_len` bands.
    ///
    /// # Panics
    /// Panics if `plan_len == 0`.
    pub fn new(cfg: ProtocolConfig, plan_len: usize) -> Self {
        assert!(plan_len > 0, "sweep plan must be non-empty");
        Initiator {
            cfg,
            plan_len,
            band_index: 0,
            state: InitState::AwaitMeasureAck(0),
            seq: 0,
            retries: 0,
            timer_token: 0,
            last_measure_sent: Instant::ZERO,
            sweep_started: Instant::ZERO,
            last_progress: Instant::ZERO,
        }
    }

    /// Current band index in the plan.
    pub fn band_index(&self) -> usize {
        self.band_index
    }

    /// Whether the sweep completed.
    pub fn is_done(&self) -> bool {
        self.state == InitState::Done
    }

    /// Whether the machine hit the fail-safe.
    pub fn is_reverted(&self) -> bool {
        self.state == InitState::Reverted
    }

    fn next_token(&mut self) -> u32 {
        self.timer_token += 1;
        self.timer_token
    }

    /// Begins the sweep at `now`: sends the first measure frame.
    pub fn start(&mut self, now: Instant) -> Vec<Action> {
        self.sweep_started = now;
        self.last_progress = now;
        self.state = InitState::AwaitMeasureAck(0);
        self.send_measure(now, Duration::ZERO)
    }

    fn send_measure(&mut self, now: Instant, delay: Duration) -> Vec<Action> {
        self.seq = self.seq.wrapping_add(1);
        self.last_measure_sent = now + delay;
        let token = self.next_token();
        vec![
            Action::Send {
                frame: Frame::Measure { seq: self.seq },
                delay,
            },
            Action::ArmTimer {
                at: now + delay + self.cfg.rto,
                token,
            },
        ]
    }

    fn send_advert(&mut self, now: Instant, delay: Duration, next_channel: u16) -> Vec<Action> {
        self.seq = self.seq.wrapping_add(1);
        let token = self.next_token();
        vec![
            Action::Send {
                frame: Frame::HopAdvert {
                    seq: self.seq,
                    next_channel,
                    dwell_us: self.cfg.measure_gap.as_micros() as u32
                        * self.cfg.measures_per_band as u32,
                },
                delay,
            },
            Action::ArmTimer {
                at: now + delay + self.cfg.rto,
                token,
            },
        ]
    }

    /// Handles a received ack. `t_rx` is the arrival time of the ack (the
    /// reverse-CSI timestamp); `t_measure_rx` is when the responder received
    /// the corresponding frame (forward CSI) — the driver knows it because
    /// it delivered the frame.
    ///
    /// `next_channel_of` maps a plan index to its channel number; the
    /// machine needs it to fill adverts.
    pub fn on_ack(
        &mut self,
        t_rx: Instant,
        seq: u16,
        t_measure_rx: Instant,
        next_channel_of: &dyn Fn(usize) -> u16,
    ) -> Vec<Action> {
        if seq != self.seq {
            return Vec::new(); // stale ack
        }
        self.retries = 0;
        self.last_progress = t_rx;
        match self.state {
            InitState::AwaitMeasureAck(k) => {
                let mut out = vec![Action::MeasurementDone {
                    band_index: self.band_index,
                    t_forward: t_measure_rx,
                    t_reverse: t_rx,
                }];
                let next_k = k + 1;
                if next_k < self.cfg.measures_per_band {
                    self.state = InitState::AwaitMeasureAck(next_k);
                    out.extend(self.send_measure(t_rx, self.cfg.measure_gap));
                } else if self.band_index + 1 < self.plan_len {
                    self.state = InitState::AwaitAdvertAck;
                    let ch = next_channel_of(self.band_index + 1);
                    out.extend(self.send_advert(t_rx, self.cfg.measure_gap, ch));
                } else {
                    self.state = InitState::Done;
                    out.push(Action::SweepComplete);
                }
                out
            }
            InitState::AwaitAdvertAck | InitState::Probing => {
                // Advert (or probe after optimistic hop) acked: move to the
                // next band and resume measuring there.
                if self.state == InitState::AwaitAdvertAck {
                    self.band_index += 1;
                }
                self.state = InitState::AwaitMeasureAck(0);
                let mut out = vec![Action::Retune {
                    band_index: self.band_index,
                }];
                out.extend(self.send_measure(t_rx, Duration::from_micros(200)));
                out
            }
            InitState::Done | InitState::Reverted => Vec::new(),
        }
    }

    /// Handles a timer fire. Stale tokens are ignored.
    pub fn on_timer(&mut self, now: Instant, token: u32) -> Vec<Action> {
        if token != self.timer_token {
            return Vec::new();
        }
        // Fail-safe first: too long without progress.
        if now.saturating_since(self.last_progress) >= self.cfg.failsafe {
            self.state = InitState::Reverted;
            return vec![Action::Failsafe];
        }
        match self.state {
            InitState::AwaitMeasureAck(_) | InitState::Probing => {
                self.retries += 1;
                if self.retries > self.cfg.max_retries {
                    self.state = InitState::Reverted;
                    return vec![Action::Failsafe];
                }
                // Retransmit the measure (new seq, same slot).
                self.send_measure(now, Duration::ZERO)
            }
            InitState::AwaitAdvertAck => {
                self.retries += 1;
                if self.retries > self.cfg.max_retries {
                    // Optimistic hop: the responder may have moved already.
                    self.retries = 0;
                    self.band_index += 1;
                    if self.band_index >= self.plan_len {
                        self.state = InitState::Reverted;
                        return vec![Action::Failsafe];
                    }
                    self.state = InitState::Probing;
                    let mut out = vec![Action::Retune {
                        band_index: self.band_index,
                    }];
                    out.extend(self.send_measure(now, Duration::from_micros(200)));
                    out
                } else {
                    // We do not know the channel map here; the driver
                    // re-requests it. Simplest correct move: retransmit via
                    // a fresh advert with the same target, which the driver
                    // fills in by calling `advert_retransmit`.
                    self.advert_retransmit(now)
                }
            }
            InitState::Done | InitState::Reverted => Vec::new(),
        }
    }

    /// Builds the advert retransmission (used by `on_timer`). Exposed for
    /// the driver, which owns the channel map.
    fn advert_retransmit(&mut self, now: Instant) -> Vec<Action> {
        // Advert carries the *next* band's channel; the driver rewrites the
        // channel field on send (it owns the plan). We use 0 as a
        // placeholder the driver must replace.
        self.seq = self.seq.wrapping_add(1);
        let token = self.next_token();
        vec![
            Action::Send {
                frame: Frame::HopAdvert {
                    seq: self.seq,
                    next_channel: 0,
                    dwell_us: 0,
                },
                delay: Duration::ZERO,
            },
            Action::ArmTimer {
                at: now + self.cfg.rto,
                token,
            },
        ]
    }

    /// The plan index the advert currently in flight points at.
    pub fn advert_target(&self) -> usize {
        (self.band_index + 1).min(self.plan_len - 1)
    }
}

/// Responder-side behaviour (stateless except for the fail-safe clock and
/// current band): ack everything, follow adverts.
#[derive(Debug)]
pub struct Responder {
    cfg: ProtocolConfig,
    band_index: usize,
    last_heard: Instant,
    reverted: bool,
}

/// What the responder asks of the driver.
#[derive(Debug, Clone, PartialEq)]
pub enum ResponderAction {
    /// Send an ack after SIFS.
    SendAck {
        /// Sequence being acked.
        seq: u16,
    },
    /// Retune to the channel named in a hop advert, after the ack is out.
    RetuneToChannel {
        /// 802.11 channel number from the advert.
        channel: u16,
    },
    /// Fail-safe: revert to the default band.
    Failsafe,
}

impl Responder {
    /// Creates a responder.
    pub fn new(cfg: ProtocolConfig) -> Self {
        Responder {
            cfg,
            band_index: 0,
            last_heard: Instant::ZERO,
            reverted: false,
        }
    }

    /// Current band index (driver-maintained mirror; see
    /// [`Responder::set_band_index`]).
    pub fn band_index(&self) -> usize {
        self.band_index
    }

    /// Driver callback after retuning the responder.
    pub fn set_band_index(&mut self, idx: usize) {
        self.band_index = idx;
    }

    /// Whether the fail-safe fired.
    pub fn is_reverted(&self) -> bool {
        self.reverted
    }

    /// Handles a received frame at `now`.
    pub fn on_frame(&mut self, now: Instant, frame: &Frame) -> Vec<ResponderAction> {
        self.last_heard = now;
        match frame {
            Frame::Measure { seq } => vec![ResponderAction::SendAck { seq: *seq }],
            Frame::HopAdvert {
                seq, next_channel, ..
            } => vec![
                ResponderAction::SendAck { seq: *seq },
                ResponderAction::RetuneToChannel {
                    channel: *next_channel,
                },
            ],
            // Data and stray acks need no protocol response.
            _ => Vec::new(),
        }
    }

    /// Periodic fail-safe check; the driver calls this on a coarse timer.
    pub fn on_failsafe_check(&mut self, now: Instant) -> Vec<ResponderAction> {
        if !self.reverted && now.saturating_since(self.last_heard) >= self.cfg.failsafe {
            self.reverted = true;
            return vec![ResponderAction::Failsafe];
        }
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chan_of(_idx: usize) -> u16 {
        36
    }

    #[test]
    fn happy_path_single_band_completes() {
        let cfg = ProtocolConfig {
            measures_per_band: 2,
            ..Default::default()
        };
        let mut init = Initiator::new(cfg, 1);
        let t0 = Instant::from_millis(1);
        let a = init.start(t0);
        assert!(matches!(
            a[0],
            Action::Send {
                frame: Frame::Measure { .. },
                ..
            }
        ));

        // Ack exchange 0 -> expect MeasurementDone + next measure.
        let a = init.on_ack(
            t0 + Duration::from_micros(100),
            1,
            t0 + Duration::from_micros(50),
            &chan_of,
        );
        assert!(matches!(
            a[0],
            Action::MeasurementDone { band_index: 0, .. }
        ));
        assert!(matches!(
            a[1],
            Action::Send {
                frame: Frame::Measure { .. },
                ..
            }
        ));

        // Ack exchange 1 -> last band, so SweepComplete.
        let a = init.on_ack(
            t0 + Duration::from_micros(900),
            2,
            t0 + Duration::from_micros(850),
            &chan_of,
        );
        assert!(matches!(a[0], Action::MeasurementDone { .. }));
        assert!(a.contains(&Action::SweepComplete));
        assert!(init.is_done());
    }

    #[test]
    fn advert_sent_between_bands() {
        let cfg = ProtocolConfig {
            measures_per_band: 1,
            ..Default::default()
        };
        let mut init = Initiator::new(cfg, 2);
        let t0 = Instant::ZERO;
        init.start(t0);
        let a = init.on_ack(
            t0 + Duration::from_micros(100),
            1,
            t0 + Duration::from_micros(50),
            &chan_of,
        );
        // One measurement done, then the hop advert.
        assert!(matches!(a[0], Action::MeasurementDone { .. }));
        let has_advert = a.iter().any(|x| {
            matches!(
                x,
                Action::Send {
                    frame: Frame::HopAdvert { .. },
                    ..
                }
            )
        });
        assert!(has_advert, "{a:?}");
        // Advert ack -> retune + first measure on the new band.
        let a = init.on_ack(
            t0 + Duration::from_millis(1),
            2,
            t0 + Duration::from_micros(950),
            &chan_of,
        );
        assert_eq!(a[0], Action::Retune { band_index: 1 });
        assert_eq!(init.band_index(), 1);
    }

    #[test]
    fn stale_ack_ignored() {
        let mut init = Initiator::new(ProtocolConfig::default(), 1);
        init.start(Instant::ZERO);
        let a = init.on_ack(Instant::from_micros(10), 999, Instant::ZERO, &chan_of);
        assert!(a.is_empty());
    }

    #[test]
    fn measure_timeout_retransmits_then_failsafe() {
        let cfg = ProtocolConfig {
            max_retries: 2,
            failsafe: Duration::from_millis(500),
            ..Default::default()
        };
        let mut init = Initiator::new(cfg, 1);
        let mut now = Instant::ZERO;
        let a = init.start(now);
        let mut token = match a[1] {
            Action::ArmTimer { token, .. } => token,
            _ => panic!("expected timer"),
        };
        // Two retransmissions allowed...
        for _ in 0..2 {
            now += cfg.rto;
            let a = init.on_timer(now, token);
            assert!(
                matches!(
                    a[0],
                    Action::Send {
                        frame: Frame::Measure { .. },
                        ..
                    }
                ),
                "{a:?}"
            );
            token = match a[1] {
                Action::ArmTimer { token, .. } => token,
                _ => panic!("expected timer"),
            };
        }
        // ...third timeout reverts.
        now += cfg.rto;
        let a = init.on_timer(now, token);
        assert_eq!(a, vec![Action::Failsafe]);
        assert!(init.is_reverted());
    }

    #[test]
    fn stale_timer_token_ignored() {
        let mut init = Initiator::new(ProtocolConfig::default(), 1);
        init.start(Instant::ZERO);
        assert!(init.on_timer(Instant::from_millis(1), 999).is_empty());
    }

    #[test]
    fn advert_timeout_hops_optimistically() {
        let cfg = ProtocolConfig {
            measures_per_band: 1,
            max_retries: 1,
            ..Default::default()
        };
        let mut init = Initiator::new(cfg, 3);
        let t0 = Instant::ZERO;
        init.start(t0);
        // Finish measuring band 0 -> advert in flight.
        let a = init.on_ack(
            t0 + Duration::from_micros(100),
            1,
            t0 + Duration::from_micros(50),
            &chan_of,
        );
        let token = a
            .iter()
            .find_map(|x| match x {
                Action::ArmTimer { token, .. } => Some(*token),
                _ => None,
            })
            .unwrap();
        // First timeout: retransmit advert.
        let now = t0 + Duration::from_millis(1);
        let a = init.on_timer(now, token);
        assert!(a.iter().any(|x| matches!(
            x,
            Action::Send {
                frame: Frame::HopAdvert { .. },
                ..
            }
        )));
        let token = a
            .iter()
            .find_map(|x| match x {
                Action::ArmTimer { token, .. } => Some(*token),
                _ => None,
            })
            .unwrap();
        // Second timeout: optimistic hop to band 1 + probe.
        let a = init.on_timer(now + cfg.rto, token);
        assert_eq!(a[0], Action::Retune { band_index: 1 });
        assert!(matches!(
            a[1],
            Action::Send {
                frame: Frame::Measure { .. },
                ..
            }
        ));
        assert_eq!(init.band_index(), 1);
        assert!(!init.is_reverted());
    }

    #[test]
    fn failsafe_on_long_silence() {
        let cfg = ProtocolConfig {
            failsafe: Duration::from_millis(5),
            ..Default::default()
        };
        let mut init = Initiator::new(cfg, 4);
        init.start(Instant::ZERO);
        let token = init.timer_token;
        let a = init.on_timer(Instant::from_millis(10), token);
        assert_eq!(a, vec![Action::Failsafe]);
    }

    #[test]
    fn responder_acks_measure_and_follows_advert() {
        let mut resp = Responder::new(ProtocolConfig::default());
        let a = resp.on_frame(Instant::from_millis(1), &Frame::Measure { seq: 5 });
        assert_eq!(a, vec![ResponderAction::SendAck { seq: 5 }]);
        let a = resp.on_frame(
            Instant::from_millis(2),
            &Frame::HopAdvert {
                seq: 6,
                next_channel: 149,
                dwell_us: 2000,
            },
        );
        assert_eq!(
            a,
            vec![
                ResponderAction::SendAck { seq: 6 },
                ResponderAction::RetuneToChannel { channel: 149 }
            ]
        );
    }

    #[test]
    fn responder_failsafe_after_silence() {
        let cfg = ProtocolConfig {
            failsafe: Duration::from_millis(5),
            ..Default::default()
        };
        let mut resp = Responder::new(cfg);
        resp.on_frame(Instant::from_millis(1), &Frame::Measure { seq: 1 });
        assert!(resp.on_failsafe_check(Instant::from_millis(3)).is_empty());
        let a = resp.on_failsafe_check(Instant::from_millis(7));
        assert_eq!(a, vec![ResponderAction::Failsafe]);
        assert!(resp.is_reverted());
        // Only fires once.
        assert!(resp.on_failsafe_check(Instant::from_millis(9)).is_empty());
    }

    #[test]
    fn responder_ignores_data_frames() {
        let mut resp = Responder::new(ProtocolConfig::default());
        assert!(resp
            .on_frame(Instant::ZERO, &Frame::Data { len: 100 })
            .is_empty());
        assert!(resp
            .on_frame(Instant::ZERO, &Frame::Ack { seq: 0 })
            .is_empty());
    }
}
