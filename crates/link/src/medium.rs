//! The shared medium: airtime, turnaround gaps and frame loss.
//!
//! A deliberately simple half-duplex model: frames occupy the channel for
//! `preamble + bytes / rate`, arrive after a propagation delay that is
//! negligible at indoor scale, and are lost independently with a per-band
//! probability derived from SNR. Loss is what spreads the sweep-time CDF of
//! Fig. 9(a) to the right (retransmissions).

use crate::frame::Frame;
use crate::time::Duration;
use rand::Rng;

/// Medium parameters.
#[derive(Debug, Clone, Copy)]
pub struct MediumConfig {
    /// PHY rate used for control/measurement traffic, bits per second.
    /// Chronos injects at a basic rate for robustness.
    pub phy_rate_bps: f64,
    /// PHY preamble + PLCP header time.
    pub preamble: Duration,
    /// Short interframe space (gap before an ACK).
    pub sifs: Duration,
    /// Time to retune the radio to a different band (PLL settling).
    pub channel_switch: Duration,
    /// Independent per-frame loss probability.
    pub loss_prob: f64,
}

impl Default for MediumConfig {
    fn default() -> Self {
        MediumConfig {
            phy_rate_bps: 24e6,
            preamble: Duration::from_micros(20),
            sifs: Duration::from_micros(16),
            channel_switch: Duration::from_micros(150),
            loss_prob: 0.01,
        }
    }
}

impl MediumConfig {
    /// Airtime of a frame at the configured rate.
    pub fn airtime(&self, frame: &Frame) -> Duration {
        let bits = frame.air_bytes() as f64 * 8.0;
        self.preamble + Duration::from_secs_f64(bits / self.phy_rate_bps)
    }

    /// Draws whether a transmission is lost.
    pub fn is_lost<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        self.loss_prob > 0.0 && rng.gen::<f64>() < self.loss_prob
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn airtime_scales_with_size() {
        let m = MediumConfig::default();
        let small = m.airtime(&Frame::Ack { seq: 0 });
        let big = m.airtime(&Frame::Data { len: 1460 });
        assert!(big > small);
        // 1512-byte data frame at 24 Mbps ~ 504 us + preamble.
        let expected = 20e-6 + (1460 + 4 + 48) as f64 * 8.0 / 24e6;
        assert!((big.as_secs_f64() - expected).abs() < 1e-9);
    }

    #[test]
    fn control_exchange_fits_in_dwell() {
        // advert + sifs + ack must take well under the 2-3 ms dwell.
        let m = MediumConfig::default();
        let advert = m.airtime(&Frame::HopAdvert {
            seq: 0,
            next_channel: 1,
            dwell_us: 0,
        });
        let ack = m.airtime(&Frame::Ack { seq: 0 });
        let total = advert + m.sifs + ack;
        assert!(total < Duration::from_micros(200), "exchange {total}");
    }

    #[test]
    fn loss_rate_respected() {
        let m = MediumConfig {
            loss_prob: 0.2,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(11);
        let n = 50_000;
        let lost = (0..n).filter(|_| m.is_lost(&mut rng)).count();
        let rate = lost as f64 / n as f64;
        assert!((rate - 0.2).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn zero_loss_never_drops() {
        let m = MediumConfig {
            loss_prob: 0.0,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(12);
        assert!((0..1000).all(|_| !m.is_lost(&mut rng)));
    }
}
