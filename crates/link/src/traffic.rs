//! Traffic co-existence models (paper §12.3).
//!
//! When an access point runs a localization sweep it leaves its serving
//! channel for ~84 ms. The paper measures what that outage does to a VLC
//! video stream (Fig. 9b: nothing visible — the playback buffer absorbs it)
//! and a long-lived TCP flow (Fig. 9c: a ~6.5% throughput dip in the
//! affected second). These are queueing phenomena, reproduced here with a
//! buffered-playback model and a Reno-style throughput model driven by the
//! same outage windows the sweep simulator produces.

use crate::time::{Duration, Instant};
use std::fmt;

/// Admission-priority class of one sweep request at the service's front
/// door (see [`crate::admission::AdmissionQueue`]).
///
/// Declaration order **is** priority order: `Acquire` outranks `Track`
/// outranks `Background`, and the derived `Ord` sorts the highest
/// priority first (`Acquire < Track < Background`, i.e. "smaller sorts
/// earlier"). The shedding ladder under overload runs the other way:
/// TRACK cadence is stretched first, BACKGROUND is dropped next, and
/// ACQUIRE is rejected only as a last resort.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TrafficClass {
    /// Cold or re-acquiring clients sweeping the full band plan. Highest
    /// priority: a broken track benefits most from the earliest slot.
    Acquire,
    /// Converged clients on cheap band-subset sweeps. Deferrable: their
    /// filter coasts, so cadence can stretch under pressure.
    Track,
    /// Opportunistic monitoring traffic (site surveys, diagnostics).
    /// First to be shed — by definition it has no latency contract.
    Background,
}

impl TrafficClass {
    /// Every class, in priority order (highest first).
    pub const ALL: [TrafficClass; 3] = [
        TrafficClass::Acquire,
        TrafficClass::Track,
        TrafficClass::Background,
    ];

    /// Numeric rank, 0 = highest priority.
    pub fn rank(self) -> usize {
        match self {
            TrafficClass::Acquire => 0,
            TrafficClass::Track => 1,
            TrafficClass::Background => 2,
        }
    }

    /// Whether this class outranks (is admitted ahead of) `other`.
    pub fn outranks(self, other: TrafficClass) -> bool {
        self.rank() < other.rank()
    }
}

impl fmt::Display for TrafficClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrafficClass::Acquire => write!(f, "ACQUIRE"),
            TrafficClass::Track => write!(f, "TRACK"),
            TrafficClass::Background => write!(f, "BACKGROUND"),
        }
    }
}

/// An interval during which the AP is away from its serving channel.
#[derive(Debug, Clone, Copy)]
pub struct Outage {
    /// Outage start.
    pub start: Instant,
    /// Outage end.
    pub end: Instant,
}

impl Outage {
    /// Whether `t` falls inside the outage.
    pub fn contains(&self, t: Instant) -> bool {
        t >= self.start && t < self.end
    }
}

/// A sample of the video client's state.
#[derive(Debug, Clone, Copy)]
pub struct VideoSample {
    /// Time of the sample.
    pub t: Instant,
    /// Cumulative bytes downloaded (kilobits in the paper's plot units).
    pub downloaded_kb: f64,
    /// Cumulative bytes played.
    pub played_kb: f64,
    /// Whether playback is stalled at this instant.
    pub stalled: bool,
}

/// Buffered video playback over an AP link (the Fig. 9b model).
#[derive(Debug, Clone)]
pub struct VideoModel {
    /// Stream bitrate (playback drain), kilobits per second.
    pub bitrate_kbps: f64,
    /// Download rate when the AP serves the client, kilobits per second.
    /// Faster than the bitrate, so the buffer grows between outages.
    pub download_kbps: f64,
    /// Startup buffering: playback begins once this many kilobits are
    /// buffered.
    pub startup_buffer_kb: f64,
}

impl Default for VideoModel {
    fn default() -> Self {
        // A 2 Mbps VLC-over-RTP stream served at 2.5 Mbps: the buffer grows
        // slowly, as in the paper's trace.
        VideoModel {
            bitrate_kbps: 2_000.0,
            download_kbps: 2_500.0,
            startup_buffer_kb: 500.0,
        }
    }
}

impl VideoModel {
    /// Simulates playback over `[0, horizon]` with the given outages,
    /// sampling every `step`. Outages must be time-ordered.
    pub fn run(&self, horizon: Duration, step: Duration, outages: &[Outage]) -> Vec<VideoSample> {
        let mut samples = Vec::new();
        let mut downloaded = 0.0f64;
        let mut played = 0.0f64;
        let mut playing = false;
        let dt = step.as_secs_f64();
        let mut t = Instant::ZERO;
        while t <= Instant::ZERO + horizon {
            let in_outage = outages.iter().any(|o| o.contains(t));
            if !in_outage {
                downloaded += self.download_kbps * dt;
            }
            if !playing && downloaded - played >= self.startup_buffer_kb {
                playing = true;
            }
            let mut stalled = false;
            if playing {
                let want = self.bitrate_kbps * dt;
                let available = downloaded - played;
                if available >= want {
                    played += want;
                } else {
                    // Buffer underrun: play out what's left and stall.
                    played += available.max(0.0);
                    stalled = true;
                }
            }
            samples.push(VideoSample {
                t,
                downloaded_kb: downloaded,
                played_kb: played,
                stalled,
            });
            t += step;
        }
        samples
    }

    /// Whether any sample in a run stalled after startup.
    pub fn has_stall(samples: &[VideoSample]) -> bool {
        samples.iter().any(|s| s.stalled)
    }
}

/// A throughput sample of the TCP model.
#[derive(Debug, Clone, Copy)]
pub struct TcpSample {
    /// Time of the sample (end of the averaging window).
    pub t: Instant,
    /// Average throughput over the window, megabits per second.
    pub throughput_mbps: f64,
}

/// Reno-style TCP throughput under AP outages (the Fig. 9c model).
///
/// Between outages the flow saturates the link. An outage stops delivery;
/// when service resumes, the (simplified) congestion response costs a brief
/// ramp back to line rate — enough to reproduce the paper's ~6.5% dip on
/// one-second averages without simulating segments.
#[derive(Debug, Clone)]
pub struct TcpModel {
    /// Link capacity, megabits per second (the paper's iperf trace runs
    /// between 2.5 and 3 Mbps).
    pub capacity_mbps: f64,
    /// Time to ramp back to capacity after an outage (slow-start-ish).
    pub recovery: Duration,
}

impl Default for TcpModel {
    fn default() -> Self {
        TcpModel {
            capacity_mbps: 2.8,
            recovery: Duration::from_millis(120),
        }
    }
}

impl TcpModel {
    /// Instantaneous delivery rate at `t` (Mbps).
    fn rate_at(&self, t: Instant, outages: &[Outage]) -> f64 {
        for o in outages {
            if o.contains(t) {
                return 0.0;
            }
        }
        // In recovery after the most recent outage that ended before t?
        let mut rate = self.capacity_mbps;
        for o in outages {
            if t >= o.end {
                let since = t.saturating_since(o.end);
                if since < self.recovery {
                    // Linear ramp from half capacity back to full.
                    let frac = since.as_secs_f64() / self.recovery.as_secs_f64();
                    rate = rate.min(self.capacity_mbps * (0.5 + 0.5 * frac));
                }
            }
        }
        rate
    }

    /// Simulates the flow over `[0, horizon]`, reporting `window`-averaged
    /// throughput samples (the paper plots one-second averages).
    pub fn run(&self, horizon: Duration, window: Duration, outages: &[Outage]) -> Vec<TcpSample> {
        let fine = Duration::from_millis(1);
        let mut samples = Vec::new();
        let mut t = Instant::ZERO;
        let mut acc = 0.0f64;
        let mut acc_time = Duration::ZERO;
        let mut window_end = Instant::ZERO + window;
        while t <= Instant::ZERO + horizon {
            acc += self.rate_at(t, outages) * fine.as_secs_f64();
            acc_time += fine;
            if t + fine >= window_end {
                samples.push(TcpSample {
                    t: window_end,
                    throughput_mbps: acc / acc_time.as_secs_f64(),
                });
                acc = 0.0;
                acc_time = Duration::ZERO;
                window_end += window;
            }
            t += fine;
        }
        samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_class_declaration_order_is_priority_order() {
        use TrafficClass::*;
        assert!(Acquire < Track);
        assert!(Track < Background);
        assert!(Acquire < Background);
        let mut classes = vec![Background, Acquire, Track];
        classes.sort();
        assert_eq!(classes, vec![Acquire, Track, Background]);
        assert_eq!(TrafficClass::ALL.to_vec(), classes);
    }

    #[test]
    fn traffic_class_rank_and_outranks_agree_with_ord() {
        use TrafficClass::*;
        for a in TrafficClass::ALL {
            for b in TrafficClass::ALL {
                assert_eq!(a.outranks(b), a < b, "{a} vs {b}");
                assert_eq!(a.rank() < b.rank(), a < b);
            }
        }
        assert_eq!(Acquire.rank(), 0);
        assert_eq!(Track.rank(), 1);
        assert_eq!(Background.rank(), 2);
        assert!(!Acquire.outranks(Acquire));
    }

    #[test]
    fn traffic_class_display_names() {
        assert_eq!(TrafficClass::Acquire.to_string(), "ACQUIRE");
        assert_eq!(TrafficClass::Track.to_string(), "TRACK");
        assert_eq!(TrafficClass::Background.to_string(), "BACKGROUND");
    }

    fn one_outage_at_6s() -> Vec<Outage> {
        vec![Outage {
            start: Instant::from_millis(6_000),
            end: Instant::from_millis(6_084),
        }]
    }

    #[test]
    fn video_never_stalls_through_84ms_outage() {
        // The Fig. 9b claim: the buffer absorbs a localization outage.
        let model = VideoModel::default();
        let samples = model.run(
            Duration::from_millis(10_000),
            Duration::from_millis(10),
            &one_outage_at_6s(),
        );
        assert!(!VideoModel::has_stall(&samples));
        // Download stops during the outage...
        let before = samples
            .iter()
            .find(|s| s.t == Instant::from_millis(5_990))
            .unwrap();
        let during = samples
            .iter()
            .find(|s| s.t == Instant::from_millis(6_080))
            .unwrap();
        assert!((during.downloaded_kb - before.downloaded_kb) < 25.0 * 0.8);
        // ...but playback keeps going (blue and red lines do not cross).
        assert!(during.played_kb > before.played_kb);
        for s in &samples {
            assert!(s.downloaded_kb >= s.played_kb - 1e-9);
        }
    }

    #[test]
    fn video_stalls_under_sustained_outage() {
        // Sanity check the stall machinery: a 3-second outage must stall a
        // stream whose buffer holds < 3 s of content.
        let model = VideoModel {
            bitrate_kbps: 2_000.0,
            download_kbps: 2_100.0,
            startup_buffer_kb: 200.0,
        };
        let outage = vec![Outage {
            start: Instant::from_millis(5_000),
            end: Instant::from_millis(8_000),
        }];
        let samples = model.run(
            Duration::from_millis(10_000),
            Duration::from_millis(10),
            &outage,
        );
        assert!(VideoModel::has_stall(&samples));
    }

    #[test]
    fn video_startup_buffering_delays_playback() {
        let model = VideoModel::default();
        let samples = model.run(Duration::from_millis(2_000), Duration::from_millis(10), &[]);
        let first_play = samples.iter().find(|s| s.played_kb > 0.0).unwrap();
        // 500 kb at 2500 kbps = 200 ms of buffering.
        assert!(
            first_play.t >= Instant::from_millis(190),
            "{}",
            first_play.t
        );
    }

    #[test]
    fn tcp_dip_close_to_paper() {
        // Fig. 9c: throughput dips ~6.5% in the second containing the sweep.
        let model = TcpModel::default();
        let samples = model.run(
            Duration::from_millis(15_000),
            Duration::from_millis(1_000),
            &one_outage_at_6s(),
        );
        // Window ending at t=7s contains the outage (6.000–6.084 s).
        let steady = samples[3].throughput_mbps;
        let dip = samples
            .iter()
            .map(|s| (s.throughput_mbps, s.t))
            .find(|(_, t)| *t == Instant::from_millis(7_000))
            .unwrap()
            .0;
        let loss_frac = (steady - dip) / steady;
        assert!(
            (0.03..0.15).contains(&loss_frac),
            "dip fraction {loss_frac} (steady {steady}, dip {dip})"
        );
    }

    #[test]
    fn tcp_recovers_after_outage() {
        let model = TcpModel::default();
        let samples = model.run(
            Duration::from_millis(12_000),
            Duration::from_millis(1_000),
            &one_outage_at_6s(),
        );
        let last = samples.last().unwrap();
        assert!((last.throughput_mbps - model.capacity_mbps).abs() < 0.05);
    }

    #[test]
    fn tcp_zero_during_long_outage() {
        let model = TcpModel::default();
        let outage = vec![Outage {
            start: Instant::from_millis(1_000),
            end: Instant::from_millis(3_000),
        }];
        let samples = model.run(
            Duration::from_millis(4_000),
            Duration::from_millis(1_000),
            &outage,
        );
        // The window ending at 3 s sits fully inside the outage.
        let mid = samples
            .iter()
            .find(|s| s.t == Instant::from_millis(3_000))
            .unwrap();
        assert!(mid.throughput_mbps < 0.01, "{}", mid.throughput_mbps);
    }

    #[test]
    fn no_outage_means_flat_capacity() {
        let model = TcpModel::default();
        let samples = model.run(
            Duration::from_millis(5_000),
            Duration::from_millis(1_000),
            &[],
        );
        for s in &samples {
            assert!((s.throughput_mbps - model.capacity_mbps).abs() < 1e-6);
        }
    }

    #[test]
    fn outage_contains_boundaries() {
        let o = Outage {
            start: Instant::from_millis(1),
            end: Instant::from_millis(2),
        };
        assert!(o.contains(Instant::from_millis(1)));
        assert!(!o.contains(Instant::from_millis(2)));
        assert!(!o.contains(Instant::from_micros(999)));
    }
}
