//! Small dense complex matrices: Gaussian elimination and least squares.
//!
//! Used by the LASSO **debiasing** step of the sparse inverse-NDFT: after
//! support detection the amplitudes are refit by unpenalized least squares
//! on the selected atoms, removing the soft-threshold's shrinkage bias.

use crate::complex::Complex64;

/// A dense, row-major complex matrix.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CMat {
    rows: usize,
    cols: usize,
    data: Vec<Complex64>,
}

/// Errors from complex solves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CMatError {
    /// Singular to working precision.
    Singular,
    /// Operand dimensions incompatible.
    DimensionMismatch,
}

impl std::fmt::Display for CMatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CMatError::Singular => write!(f, "complex matrix is singular"),
            CMatError::DimensionMismatch => write!(f, "incompatible dimensions"),
        }
    }
}

impl std::error::Error for CMatError {}

impl CMat {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CMat {
            rows,
            cols,
            data: vec![Complex64::ZERO; rows * cols],
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> Complex64 {
        self.data[i * self.cols + j]
    }

    /// Element mutation.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: Complex64) {
        self.data[i * self.cols + j] = v;
    }

    /// Reshapes this matrix in place to `rows x cols`, zero-filled.
    ///
    /// Retains the data buffer's capacity, so a matrix reused across a
    /// hot loop stops allocating once it has seen its largest shape.
    pub fn reset(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, Complex64::ZERO);
    }

    /// Builds a matrix from column vectors.
    ///
    /// # Panics
    /// Panics on ragged columns or empty input.
    pub fn from_cols(cols: &[Vec<Complex64>]) -> Self {
        assert!(!cols.is_empty(), "from_cols: need at least one column");
        let rows = cols[0].len();
        assert!(
            cols.iter().all(|c| c.len() == rows),
            "from_cols: ragged columns"
        );
        let mut m = CMat::zeros(rows, cols.len());
        for (j, col) in cols.iter().enumerate() {
            for (i, v) in col.iter().enumerate() {
                m.set(i, j, *v);
            }
        }
        m
    }

    /// Conjugate-transpose product `A^H b` for a vector `b`.
    pub fn hermitian_mul_vec(&self, b: &[Complex64]) -> Vec<Complex64> {
        let mut out = Vec::new();
        self.hermitian_mul_vec_into(b, &mut out);
        out
    }

    /// [`CMat::hermitian_mul_vec`] into a caller-provided buffer
    /// (identical arithmetic, no allocation once `out` has capacity).
    pub fn hermitian_mul_vec_into(&self, b: &[Complex64], out: &mut Vec<Complex64>) {
        assert_eq!(b.len(), self.rows, "hermitian_mul_vec: dimension mismatch");
        out.clear();
        out.resize(self.cols, Complex64::ZERO);
        for (i, bi) in b.iter().enumerate() {
            for (j, o) in out.iter_mut().enumerate() {
                *o += self.get(i, j).conj() * *bi;
            }
        }
    }

    /// Gram matrix `A^H A` (Hermitian, positive semi-definite).
    pub fn gram(&self) -> CMat {
        let mut g = CMat::zeros(self.cols, self.cols);
        self.gram_into(&mut g);
        g
    }

    /// [`CMat::gram`] into a caller-provided matrix (identical
    /// arithmetic, no allocation once `g` has capacity).
    pub fn gram_into(&self, g: &mut CMat) {
        g.reset(self.cols, self.cols);
        for j in 0..self.cols {
            for k in j..self.cols {
                let mut acc = Complex64::ZERO;
                for i in 0..self.rows {
                    acc += self.get(i, j).conj() * self.get(i, k);
                }
                g.set(j, k, acc);
                g.set(k, j, acc.conj());
            }
        }
    }

    /// Matrix-vector product `A x`.
    pub fn mul_vec(&self, x: &[Complex64]) -> Vec<Complex64> {
        assert_eq!(x.len(), self.cols, "mul_vec: dimension mismatch");
        let mut out = vec![Complex64::ZERO; self.rows];
        for (i, o) in out.iter_mut().enumerate() {
            let mut acc = Complex64::ZERO;
            for (j, xj) in x.iter().enumerate() {
                acc += self.get(i, j) * *xj;
            }
            *o = acc;
        }
        out
    }

    /// Solves the square system `A x = b` by Gaussian elimination with
    /// partial pivoting (on magnitudes).
    pub fn solve(&self, b: &[Complex64]) -> Result<Vec<Complex64>, CMatError> {
        let mut work = Vec::new();
        let mut x = Vec::new();
        self.solve_into(b, &mut work, &mut x)?;
        Ok(x)
    }

    /// [`CMat::solve`] with caller-provided working storage: `work`
    /// receives the eliminated copy of the matrix, `x` the solution.
    /// Identical arithmetic; no allocation once the buffers have
    /// capacity.
    pub fn solve_into(
        &self,
        b: &[Complex64],
        work: &mut Vec<Complex64>,
        x: &mut Vec<Complex64>,
    ) -> Result<(), CMatError> {
        if self.rows != self.cols || b.len() != self.rows {
            return Err(CMatError::DimensionMismatch);
        }
        let n = self.rows;
        work.clear();
        work.extend_from_slice(&self.data);
        let a = work;
        x.clear();
        x.extend_from_slice(b);
        for col in 0..n {
            // Pivot on the largest magnitude.
            let mut p = col;
            let mut best = a[col * n + col].abs();
            for r in (col + 1)..n {
                let v = a[r * n + col].abs();
                if v > best {
                    best = v;
                    p = r;
                }
            }
            if best < 1e-12 {
                return Err(CMatError::Singular);
            }
            if p != col {
                for j in 0..n {
                    a.swap(col * n + j, p * n + j);
                }
                x.swap(col, p);
            }
            let pivot = a[col * n + col];
            for r in (col + 1)..n {
                let factor = a[r * n + col] / pivot;
                if factor == Complex64::ZERO {
                    continue;
                }
                for j in col..n {
                    let v = a[col * n + j];
                    a[r * n + j] -= factor * v;
                }
                let xc = x[col];
                x[r] -= factor * xc;
            }
        }
        for col in (0..n).rev() {
            let mut sum = x[col];
            for j in (col + 1)..n {
                sum -= a[col * n + j] * x[j];
            }
            x[col] = sum / a[col * n + col];
        }
        Ok(())
    }

    /// Least squares `min ||A x - b||_2` via the (ridged) normal equations
    /// `A^H A x = A^H b`. Suitable for the small, well-separated atom sets
    /// the debias step produces.
    pub fn lstsq(&self, b: &[Complex64]) -> Result<Vec<Complex64>, CMatError> {
        let mut ws = CLstsqScratch::default();
        let mut x = Vec::new();
        self.lstsq_into(b, &mut ws, &mut x)?;
        Ok(x)
    }

    /// [`CMat::lstsq`] with a reusable workspace — identical arithmetic,
    /// no allocation once the workspace has seen the problem size.
    pub fn lstsq_into(
        &self,
        b: &[Complex64],
        ws: &mut CLstsqScratch,
        x: &mut Vec<Complex64>,
    ) -> Result<(), CMatError> {
        if b.len() != self.rows {
            return Err(CMatError::DimensionMismatch);
        }
        let CLstsqScratch {
            gram, rhs, work, ..
        } = ws;
        self.gram_into(gram);
        let g = gram;
        // Small ridge keeps nearly-coherent atom pairs solvable.
        let trace: f64 = (0..g.rows()).map(|i| g.get(i, i).re).sum();
        let ridge = 1e-9 * (trace / g.rows() as f64).max(1e-12);
        for i in 0..g.rows() {
            let d = g.get(i, i);
            g.set(i, i, d + Complex64::from_re(ridge));
        }
        self.hermitian_mul_vec_into(b, rhs);
        g.solve_into(rhs, work, x)
    }

    /// [`CMat::lstsq_into`] with the normal-equations build (`A^H A` and
    /// `A^H b`) lane-chunked over split re/im planes
    /// ([`crate::lanes::dot_conj_split`]).
    ///
    /// Tolerance tier: the four-accumulator reductions reassociate the
    /// Gram/RHS sums relative to [`CMat::lstsq_into`], so results agree
    /// to ≤ 1e-12 relative rather than bitwise; ridge and triangular
    /// solve are the identical scalar code. The split column copies
    /// live in the workspace, so a warm workspace allocates nothing.
    pub fn lstsq_into_lanes(
        &self,
        b: &[Complex64],
        ws: &mut CLstsqScratch,
        x: &mut Vec<Complex64>,
    ) -> Result<(), CMatError> {
        if b.len() != self.rows {
            return Err(CMatError::DimensionMismatch);
        }
        let (rows, cols) = (self.rows, self.cols);
        let CLstsqScratch {
            gram,
            rhs,
            work,
            col_re,
            col_im,
            b_re,
            b_im,
        } = ws;
        // Column-major split copy of A: column j occupies
        // [j*rows .. (j+1)*rows] of each plane.
        col_re.clear();
        col_im.clear();
        col_re.resize(rows * cols, 0.0);
        col_im.resize(rows * cols, 0.0);
        for (i, row) in self.data.chunks_exact(cols.max(1)).enumerate() {
            for (j, v) in row.iter().enumerate() {
                col_re[j * rows + i] = v.re;
                col_im[j * rows + i] = v.im;
            }
        }
        b_re.clear();
        b_im.clear();
        b_re.extend(b.iter().map(|z| z.re));
        b_im.extend(b.iter().map(|z| z.im));
        let col = |j: usize| {
            (
                &col_re[j * rows..(j + 1) * rows],
                &col_im[j * rows..(j + 1) * rows],
            )
        };
        gram.reset(cols, cols);
        for j in 0..cols {
            let (jr, ji) = col(j);
            for k in j..cols {
                let (kr, ki) = col(k);
                let (re, im) = crate::lanes::dot_conj_split(jr, ji, kr, ki);
                let v = Complex64::new(re, im);
                gram.set(j, k, v);
                gram.set(k, j, v.conj());
            }
        }
        rhs.clear();
        for j in 0..cols {
            let (jr, ji) = col(j);
            let (re, im) = crate::lanes::dot_conj_split(jr, ji, b_re, b_im);
            rhs.push(Complex64::new(re, im));
        }
        let g = gram;
        // Identical ridge + solve to the scalar path.
        let trace: f64 = (0..g.rows()).map(|i| g.get(i, i).re).sum();
        let ridge = 1e-9 * (trace / g.rows() as f64).max(1e-12);
        for i in 0..g.rows() {
            let d = g.get(i, i);
            g.set(i, i, d + Complex64::from_re(ridge));
        }
        g.solve_into(rhs, work, x)
    }
}

/// Reusable working storage for [`CMat::lstsq_into`] and
/// [`CMat::lstsq_into_lanes`] (the split planes are only touched by the
/// lanes variant).
#[derive(Debug, Clone, Default)]
pub struct CLstsqScratch {
    gram: CMat,
    rhs: Vec<Complex64>,
    work: Vec<Complex64>,
    col_re: Vec<f64>,
    col_im: Vec<f64>,
    b_re: Vec<f64>,
    b_im: Vec<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64, im: f64) -> Complex64 {
        Complex64::new(re, im)
    }

    #[test]
    fn solve_identity() {
        let mut a = CMat::zeros(3, 3);
        for i in 0..3 {
            a.set(i, i, Complex64::ONE);
        }
        let b = vec![c(1.0, 2.0), c(-1.0, 0.0), c(0.0, 3.0)];
        assert_eq!(a.solve(&b).unwrap(), b);
    }

    #[test]
    fn solve_known_complex_system() {
        // A = [[1, i], [-i, 2]]; pick x, compute b = A x, solve back.
        let mut a = CMat::zeros(2, 2);
        a.set(0, 0, c(1.0, 0.0));
        a.set(0, 1, c(0.0, 1.0));
        a.set(1, 0, c(0.0, -1.0));
        a.set(1, 1, c(2.0, 0.0));
        let x_true = vec![c(0.5, -1.0), c(2.0, 0.25)];
        let b = a.mul_vec(&x_true);
        let x = a.solve(&b).unwrap();
        for (u, v) in x.iter().zip(x_true.iter()) {
            assert!(u.approx_eq(*v, 1e-10), "{u} vs {v}");
        }
    }

    #[test]
    fn singular_detected() {
        let mut a = CMat::zeros(2, 2);
        a.set(0, 0, c(1.0, 1.0));
        a.set(0, 1, c(2.0, 2.0));
        a.set(1, 0, c(0.5, 0.5));
        a.set(1, 1, c(1.0, 1.0));
        assert_eq!(
            a.solve(&[Complex64::ONE, Complex64::ONE]),
            Err(CMatError::Singular)
        );
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let mut a = CMat::zeros(2, 2);
        a.set(0, 0, Complex64::ZERO);
        a.set(0, 1, Complex64::ONE);
        a.set(1, 0, Complex64::ONE);
        a.set(1, 1, Complex64::ZERO);
        let x = a.solve(&[c(3.0, 0.0), c(4.0, 0.0)]).unwrap();
        assert!(x[0].approx_eq(c(4.0, 0.0), 1e-12));
        assert!(x[1].approx_eq(c(3.0, 0.0), 1e-12));
    }

    #[test]
    fn lstsq_recovers_amplitudes_of_steering_vectors() {
        // Two "atoms" (complex exponentials) with known complex weights,
        // observed at 8 frequencies: lstsq must recover the weights.
        use std::f64::consts::PI;
        let freqs: Vec<f64> = (0..8).map(|i| 5.0e9 + i as f64 * 40e6).collect();
        let atom = |tau_ns: f64| -> Vec<Complex64> {
            freqs
                .iter()
                .map(|f| Complex64::cis(-2.0 * PI * f * tau_ns * 1e-9))
                .collect()
        };
        let a = CMat::from_cols(&[atom(5.0), atom(13.0)]);
        let w_true = vec![c(0.8, 0.1), c(0.0, -0.5)];
        let b = a.mul_vec(&w_true);
        let w = a.lstsq(&b).unwrap();
        for (u, v) in w.iter().zip(w_true.iter()) {
            assert!(u.approx_eq(*v, 1e-6), "{u} vs {v}");
        }
    }

    #[test]
    fn lstsq_overdetermined_with_noise() {
        let mut a = CMat::zeros(6, 2);
        for i in 0..6 {
            a.set(i, 0, Complex64::cis(0.3 * i as f64));
            a.set(i, 1, Complex64::cis(-0.9 * i as f64));
        }
        let w_true = vec![c(1.0, 0.0), c(0.0, 1.0)];
        let mut b = a.mul_vec(&w_true);
        for (i, v) in b.iter_mut().enumerate() {
            *v += Complex64::from_polar(0.01, i as f64);
        }
        let w = a.lstsq(&b).unwrap();
        assert!(w[0].approx_eq(w_true[0], 0.05));
        assert!(w[1].approx_eq(w_true[1], 0.05));
    }

    #[test]
    fn gram_is_hermitian() {
        let a = CMat::from_cols(&[
            vec![c(1.0, 1.0), c(0.0, -2.0), c(0.5, 0.0)],
            vec![c(0.0, 1.0), c(1.0, 0.0), c(-1.0, 0.5)],
        ]);
        let g = a.gram();
        for i in 0..2 {
            for j in 0..2 {
                assert!(g.get(i, j).approx_eq(g.get(j, i).conj(), 1e-12));
            }
            assert!(g.get(i, i).im.abs() < 1e-12);
            assert!(g.get(i, i).re >= 0.0);
        }
    }

    #[test]
    fn lstsq_into_is_bitwise_identical_and_reusable() {
        let mut a = CMat::zeros(6, 2);
        for i in 0..6 {
            a.set(i, 0, Complex64::cis(0.3 * i as f64));
            a.set(i, 1, Complex64::cis(-0.9 * i as f64));
        }
        let b: Vec<Complex64> = (0..6).map(|i| Complex64::cis(0.11 * i as f64)).collect();
        let fresh = a.lstsq(&b).unwrap();
        let mut ws = CLstsqScratch::default();
        let mut x = Vec::new();
        // A warm (already-sized) workspace must produce the same bits.
        for _ in 0..3 {
            a.lstsq_into(&b, &mut ws, &mut x).unwrap();
            for (u, v) in x.iter().zip(fresh.iter()) {
                assert_eq!(u.re.to_bits(), v.re.to_bits());
                assert_eq!(u.im.to_bits(), v.im.to_bits());
            }
        }
    }

    #[test]
    fn lstsq_lanes_matches_scalar_within_tolerance() {
        // Odd row counts exercise the lane tail; warm reuse must not
        // change the answer.
        let mut ws = CLstsqScratch::default();
        let mut xs = Vec::new();
        for rows in [2usize, 5, 8, 13, 21] {
            let mut a = CMat::zeros(rows, 2);
            for i in 0..rows {
                a.set(i, 0, Complex64::cis(0.3 * i as f64));
                a.set(i, 1, Complex64::cis(-0.9 * i as f64 + 0.2));
            }
            let b: Vec<Complex64> = (0..rows)
                .map(|i| Complex64::from_polar(1.0 + 0.1 * i as f64, 0.11 * i as f64))
                .collect();
            let scalar = a.lstsq(&b).unwrap();
            a.lstsq_into_lanes(&b, &mut ws, &mut xs).unwrap();
            for (u, v) in xs.iter().zip(scalar.iter()) {
                assert!((*u - *v).abs() <= 1e-12 * v.abs().max(1.0), "rows={rows}");
            }
        }
    }

    #[test]
    fn reset_reshapes_and_zeroes() {
        let mut m = CMat::zeros(2, 2);
        m.set(1, 1, c(3.0, -1.0));
        m.reset(3, 2);
        assert_eq!((m.rows(), m.cols()), (3, 2));
        for i in 0..3 {
            for j in 0..2 {
                assert_eq!(m.get(i, j), Complex64::ZERO);
            }
        }
    }

    #[test]
    fn dimension_errors() {
        let a = CMat::zeros(2, 3);
        assert_eq!(
            a.solve(&[Complex64::ZERO; 2]),
            Err(CMatError::DimensionMismatch)
        );
        assert_eq!(
            a.lstsq(&[Complex64::ZERO; 5]),
            Err(CMatError::DimensionMismatch)
        );
    }
}
