//! Double-precision complex numbers.
//!
//! A minimal-but-complete complex type sufficient for the Chronos signal
//! processing pipeline: channel models, NDFT matrices, and the proximal
//! gradient solver. Operator overloads mirror `num-complex` so downstream
//! code reads naturally.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` real and imaginary parts.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + 1i`.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from rectangular coordinates.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_re(re: f64) -> Self {
        Complex64 { re, im: 0.0 }
    }

    /// Creates a complex number from polar coordinates (magnitude, phase in
    /// radians).
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex64::new(r * theta.cos(), r * theta.sin())
    }

    /// `e^{i theta}`: the unit phasor with phase `theta` (radians).
    ///
    /// This is the workhorse of every channel model in the repository:
    /// `h = a * cis(-2 pi f tau)`.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Complex64::new(theta.cos(), theta.sin())
    }

    /// Magnitude (absolute value).
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude. Cheaper than [`abs`](Self::abs) when only ordering
    /// matters.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Phase angle in `(-pi, pi]` radians.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex64::new(self.re, -self.im)
    }

    /// Multiplicative inverse. Returns non-finite components when `self` is
    /// zero, mirroring IEEE division semantics.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sq();
        Complex64::new(self.re / d, -self.im / d)
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex64::new(self.re * k, self.im * k)
    }

    /// Complex exponential `e^self`.
    #[inline]
    pub fn exp(self) -> Self {
        let r = self.re.exp();
        Complex64::new(r * self.im.cos(), r * self.im.sin())
    }

    /// Principal square root.
    ///
    /// The result lies in the right half plane (non-negative real part), with
    /// the branch cut on the negative real axis.
    pub fn sqrt(self) -> Self {
        let (r, theta) = self.to_polar();
        Complex64::from_polar(r.sqrt(), theta / 2.0)
    }

    /// Integer power by repeated squaring.
    pub fn powi(self, mut n: u32) -> Self {
        let mut base = self;
        let mut acc = Complex64::ONE;
        while n > 0 {
            if n & 1 == 1 {
                acc *= base;
            }
            base *= base;
            n >>= 1;
        }
        acc
    }

    /// Converts to polar form `(magnitude, phase)`.
    #[inline]
    pub fn to_polar(self) -> (f64, f64) {
        (self.abs(), self.arg())
    }

    /// `true` when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Approximate equality with absolute tolerance `tol` on both components.
    #[inline]
    pub fn approx_eq(self, other: Self, tol: f64) -> bool {
        (self.re - other.re).abs() <= tol && (self.im - other.im).abs() <= tol
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl From<f64> for Complex64 {
    #[inline]
    fn from(re: f64) -> Self {
        Complex64::from_re(re)
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Complex64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Complex64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Complex64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    // Division *is* multiplication by the inverse here; clippy's
    // wrong-operator heuristic doesn't apply.
    #[allow(clippy::suspicious_arithmetic_impl)]
    #[inline]
    fn div(self, rhs: Self) -> Self {
        self * rhs.inv()
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: f64) -> Self {
        self.scale(rhs)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        rhs.scale(self)
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: f64) -> Self {
        Complex64::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline]
    fn neg(self) -> Self {
        Complex64::new(-self.re, -self.im)
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex64 {
    #[inline]
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Self {
        iter.fold(Complex64::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    const TOL: f64 = 1e-12;

    #[test]
    fn construction_and_identities() {
        assert_eq!(Complex64::ZERO + Complex64::ONE, Complex64::ONE);
        assert_eq!(Complex64::I * Complex64::I, -Complex64::ONE);
        assert_eq!(Complex64::from(3.5), Complex64::new(3.5, 0.0));
    }

    #[test]
    fn polar_round_trip() {
        let z = Complex64::new(-1.25, 2.5);
        let (r, t) = z.to_polar();
        assert!(Complex64::from_polar(r, t).approx_eq(z, TOL));
    }

    #[test]
    fn cis_matches_from_polar_unit() {
        for k in 0..16 {
            let theta = -PI + 2.0 * PI * (k as f64) / 16.0 + 1e-3;
            assert!(Complex64::cis(theta).approx_eq(Complex64::from_polar(1.0, theta), TOL));
        }
    }

    #[test]
    fn arithmetic_basics() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(-3.0, 0.5);
        assert!((a + b).approx_eq(Complex64::new(-2.0, 2.5), TOL));
        assert!((a - b).approx_eq(Complex64::new(4.0, 1.5), TOL));
        assert!((a * b).approx_eq(Complex64::new(-4.0, -5.5), TOL));
        let q = a / b;
        assert!((q * b).approx_eq(a, 1e-10));
    }

    #[test]
    fn conj_and_inv() {
        let z = Complex64::new(0.3, -0.7);
        assert_eq!(z.conj().im, 0.7);
        assert!((z * z.inv()).approx_eq(Complex64::ONE, 1e-12));
        // |z|^2 = z * conj(z)
        let m = z * z.conj();
        assert!((m.re - z.norm_sq()).abs() < TOL);
        assert!(m.im.abs() < TOL);
    }

    #[test]
    fn exp_euler_identity() {
        // e^{i pi} = -1
        let z = (Complex64::I * PI).exp();
        assert!(z.approx_eq(-Complex64::ONE, 1e-12));
    }

    #[test]
    fn sqrt_principal_branch() {
        let z = Complex64::new(-4.0, 0.0);
        let s = z.sqrt();
        // sqrt(-4) = 2i under the principal branch.
        assert!(s.approx_eq(Complex64::new(0.0, 2.0), 1e-10));
        let w = Complex64::new(3.0, -4.0);
        assert!((w.sqrt() * w.sqrt()).approx_eq(w, 1e-10));
        assert!(w.sqrt().re >= 0.0);
    }

    #[test]
    fn powi_matches_repeated_multiplication() {
        let z = Complex64::from_polar(1.1, 0.3);
        let mut manual = Complex64::ONE;
        for _ in 0..7 {
            manual *= z;
        }
        assert!(z.powi(7).approx_eq(manual, 1e-10));
        assert_eq!(z.powi(0), Complex64::ONE);
    }

    #[test]
    fn phase_of_channel_model() {
        // h = a e^{-j 2 pi f tau}: arg must be -2 pi f tau modulo 2 pi.
        let f = 2.412e9;
        let tau = 2e-9;
        let h = Complex64::from_polar(0.8, -2.0 * PI * f * tau);
        let expected = (-2.0 * PI * f * tau).rem_euclid(2.0 * PI);
        let got = h.arg().rem_euclid(2.0 * PI);
        assert!((expected - got).abs() < 1e-9);
    }

    #[test]
    fn sum_iterator() {
        let v = vec![Complex64::new(1.0, 1.0); 10];
        let s: Complex64 = v.into_iter().sum();
        assert!(s.approx_eq(Complex64::new(10.0, 10.0), TOL));
    }

    #[test]
    fn display_formatting() {
        assert_eq!(Complex64::new(1.0, -2.0).to_string(), "1-2i");
        assert_eq!(Complex64::new(1.0, 2.0).to_string(), "1+2i");
    }

    #[test]
    fn assign_ops() {
        let mut z = Complex64::new(1.0, 1.0);
        z += Complex64::ONE;
        z -= Complex64::I;
        z *= Complex64::new(0.0, 2.0);
        z /= Complex64::new(0.0, 2.0);
        assert!(z.approx_eq(Complex64::new(2.0, 0.0), TOL));
    }
}
