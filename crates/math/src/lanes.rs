//! Explicit 4-wide f64 lane helpers for the structure-of-arrays hot
//! loops (the `simd` feature of `chronos-core`).
//!
//! The workspace targets stable Rust with no SIMD crates, so "SIMD" here
//! means *auto-vectorizer-friendly* code: split re/im slices walked in
//! fixed `[f64; 4]` lane chunks with independent accumulators, which LLVM
//! lowers to packed `mulpd`/`addpd` (and FMA where the target enables
//! it). Everything in this module is plain `f64` arithmetic — it compiles
//! and runs identically on any target; only the instruction selection
//! changes.
//!
//! **Numerical contract:** the reductions here use four independent
//! accumulators folded at the end, which *reassociates* the IEEE-754 sum
//! relative to the sequential loops in [`crate::cvec`]. Callers that need
//! the exact tier (bitwise reproducibility against the scalar pipeline)
//! must keep using `cvec`; these lanes belong to the tolerance tier (see
//! `docs/PIPELINE.md`).

/// Lane width every chunked loop in this module uses.
pub const LANES: usize = 4;

/// Fused multiply-add when the target guarantees an FMA instruction,
/// plain `a * b + c` otherwise.
///
/// Without the `fma` target feature `f64::mul_add` lowers to a libm call
/// — *slower* than the two-op form — so the fallback must not use it.
#[inline(always)]
pub fn fmadd(a: f64, b: f64, c: f64) -> f64 {
    #[cfg(target_feature = "fma")]
    {
        a.mul_add(b, c)
    }
    #[cfg(not(target_feature = "fma"))]
    {
        a * b + c
    }
}

/// Sum of squared magnitudes `Σ re²+im²` of a split complex vector,
/// accumulated over four lanes.
pub fn norm2_sq_split(re: &[f64], im: &[f64]) -> f64 {
    assert_eq!(re.len(), im.len(), "lanes: split length mismatch");
    let mut acc = [0.0f64; LANES];
    let (re_c, re_t) = re.split_at(re.len() - re.len() % LANES);
    let (im_c, im_t) = im.split_at(re_c.len());
    for (r, i) in re_c.chunks_exact(LANES).zip(im_c.chunks_exact(LANES)) {
        for l in 0..LANES {
            acc[l] = fmadd(r[l], r[l], fmadd(i[l], i[l], acc[l]));
        }
    }
    let mut tail = 0.0;
    for (r, i) in re_t.iter().zip(im_t.iter()) {
        tail = fmadd(*r, *r, fmadd(*i, *i, tail));
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

/// L2 norm of a split complex vector.
pub fn norm2_split(re: &[f64], im: &[f64]) -> f64 {
    norm2_sq_split(re, im).sqrt()
}

/// L2 distance between two split complex vectors.
pub fn dist2_split(a_re: &[f64], a_im: &[f64], b_re: &[f64], b_im: &[f64]) -> f64 {
    assert_eq!(a_re.len(), b_re.len(), "lanes: split length mismatch");
    assert_eq!(a_im.len(), b_im.len(), "lanes: split length mismatch");
    assert_eq!(a_re.len(), a_im.len(), "lanes: split length mismatch");
    let mut acc = [0.0f64; LANES];
    let main = a_re.len() - a_re.len() % LANES;
    for c in (0..main).step_by(LANES) {
        for l in 0..LANES {
            let dr = a_re[c + l] - b_re[c + l];
            let di = a_im[c + l] - b_im[c + l];
            acc[l] = fmadd(dr, dr, fmadd(di, di, acc[l]));
        }
    }
    let mut tail = 0.0;
    for k in main..a_re.len() {
        let dr = a_re[k] - b_re[k];
        let di = a_im[k] - b_im[k];
        tail = fmadd(dr, dr, fmadd(di, di, tail));
    }
    ((acc[0] + acc[1]) + (acc[2] + acc[3]) + tail).sqrt()
}

/// Conjugated dot product `Σ conj(a_k) · b_k` of two split complex
/// vectors, returned as `(re, im)` and accumulated over four lanes.
///
/// This is the kernel of a Gram-matrix entry `(A^H A)[j,k]` and of the
/// normal-equations right-hand side `A^H b`:
/// `re = Σ ar·br + ai·bi`, `im = Σ ar·bi − ai·br`. Tolerance tier —
/// the four-accumulator fold reassociates the sum relative to the
/// sequential loop in [`crate::cmatrix::CMat::gram_into`].
pub fn dot_conj_split(a_re: &[f64], a_im: &[f64], b_re: &[f64], b_im: &[f64]) -> (f64, f64) {
    assert_eq!(a_re.len(), a_im.len(), "lanes: split length mismatch");
    assert_eq!(b_re.len(), b_im.len(), "lanes: split length mismatch");
    assert_eq!(a_re.len(), b_re.len(), "lanes: split length mismatch");
    let mut acc_re = [0.0f64; LANES];
    let mut acc_im = [0.0f64; LANES];
    let main = a_re.len() - a_re.len() % LANES;
    for c in (0..main).step_by(LANES) {
        for l in 0..LANES {
            let (ar, ai) = (a_re[c + l], a_im[c + l]);
            let (br, bi) = (b_re[c + l], b_im[c + l]);
            acc_re[l] = fmadd(ar, br, fmadd(ai, bi, acc_re[l]));
            acc_im[l] = fmadd(ar, bi, fmadd(-ai, br, acc_im[l]));
        }
    }
    let (mut tail_re, mut tail_im) = (0.0f64, 0.0f64);
    for k in main..a_re.len() {
        let (ar, ai) = (a_re[k], a_im[k]);
        let (br, bi) = (b_re[k], b_im[k]);
        tail_re = fmadd(ar, br, fmadd(ai, bi, tail_re));
        tail_im = fmadd(ar, bi, fmadd(-ai, br, tail_im));
    }
    (
        (acc_re[0] + acc_re[1]) + (acc_re[2] + acc_re[3]) + tail_re,
        (acc_im[0] + acc_im[1]) + (acc_im[2] + acc_im[3]) + tail_im,
    )
}

/// L∞ norm (largest magnitude) of a split complex vector.
///
/// `max` is order-insensitive for finite inputs, so this reduction is
/// *not* tolerance-bearing by itself; the per-element magnitude uses
/// `sqrt(re²+im²)` rather than `hypot`, which is where it departs (by
/// ≤ 1 ulp-ish) from [`crate::cvec::norm_inf`].
pub fn norm_inf_split(re: &[f64], im: &[f64]) -> f64 {
    assert_eq!(re.len(), im.len(), "lanes: split length mismatch");
    let mut best = 0.0f64;
    for (r, i) in re.iter().zip(im.iter()) {
        let sq = fmadd(*r, *r, *i * *i);
        if sq > best {
            best = sq;
        }
    }
    best.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cvec;
    use crate::Complex64;

    fn split(v: &[Complex64]) -> (Vec<f64>, Vec<f64>) {
        (
            v.iter().map(|z| z.re).collect(),
            v.iter().map(|z| z.im).collect(),
        )
    }

    fn vecs(n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|k| Complex64::from_polar(0.1 + (k % 7) as f64 * 0.3, 1.7 * k as f64))
            .collect()
    }

    #[test]
    fn norms_match_scalar_within_tolerance() {
        for n in [1usize, 3, 4, 7, 16, 101] {
            let v = vecs(n);
            let (re, im) = split(&v);
            let lane = norm2_split(&re, &im);
            let scalar = cvec::norm2(&v);
            assert!((lane - scalar).abs() <= 1e-12 * scalar.max(1.0), "n={n}");
            let li = norm_inf_split(&re, &im);
            let si = cvec::norm_inf(&v);
            assert!((li - si).abs() <= 1e-12 * si.max(1.0), "n={n}");
        }
    }

    #[test]
    fn dist_matches_scalar_within_tolerance() {
        for n in [1usize, 5, 8, 33] {
            let a = vecs(n);
            let b: Vec<Complex64> = vecs(n).iter().map(|z| z.scale(0.9)).collect();
            let (ar, ai) = split(&a);
            let (br, bi) = split(&b);
            let lane = dist2_split(&ar, &ai, &br, &bi);
            let scalar = cvec::dist2(&a, &b);
            assert!((lane - scalar).abs() <= 1e-12 * scalar.max(1.0), "n={n}");
        }
    }

    #[test]
    fn dot_conj_matches_scalar_within_tolerance() {
        for n in [1usize, 3, 4, 9, 32, 65] {
            let a = vecs(n);
            let b: Vec<Complex64> = vecs(n)
                .iter()
                .enumerate()
                .map(|(k, z)| z.scale(0.7 + 0.01 * k as f64))
                .collect();
            let (ar, ai) = split(&a);
            let (br, bi) = split(&b);
            let (re, im) = dot_conj_split(&ar, &ai, &br, &bi);
            let scalar: Complex64 = a
                .iter()
                .zip(b.iter())
                .map(|(x, y)| x.conj() * *y)
                .fold(Complex64::ZERO, |s, z| s + z);
            let scale = scalar.abs().max(1.0);
            assert!((re - scalar.re).abs() <= 1e-12 * scale, "n={n}");
            assert!((im - scalar.im).abs() <= 1e-12 * scale, "n={n}");
        }
    }

    #[test]
    fn empty_and_zero_are_exact() {
        assert_eq!(norm2_sq_split(&[], &[]), 0.0);
        assert_eq!(norm_inf_split(&[0.0; 5], &[0.0; 5]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn split_lengths_checked() {
        let _ = norm2_sq_split(&[1.0], &[]);
    }
}
