//! # chronos-math
//!
//! Numerics substrate for the Chronos reproduction.
//!
//! The offline dependency set deliberately excludes numerical crates
//! (`num-complex`, `ndarray`, `nalgebra`, ...), so everything the signal
//! processing pipeline needs is implemented here from scratch:
//!
//! * [`complex`] — double-precision complex arithmetic ([`Complex64`]).
//! * [`cvec`] — operations on complex vectors (dot products, norms).
//! * [`matrix`] — small dense real matrices with LU decomposition.
//! * [`lstsq`] — linear and nonlinear (Gauss–Newton) least squares.
//! * [`spline`] — natural cubic splines, used by Chronos to interpolate the
//!   CSI phase at the unmeasurable zero-subcarrier (paper §5, footnote 3).
//! * [`unwrap`] — 1-D phase unwrapping.
//! * [`crt`] — Chinese-remainder-theorem style congruence solving by grid
//!   voting (the construction behind the paper's Fig. 3).
//! * [`stats`] — summary statistics, CDFs and histograms used everywhere in
//!   the evaluation harness.
//! * [`peaks`] — peak extraction on magnitude profiles (first-peak rule).
//! * [`constants`] — physical constants and unit conversions.
//!
//! All routines are deterministic and panic-free for finite inputs unless the
//! documentation explicitly states a precondition.

pub mod cmatrix;
pub mod complex;
pub mod constants;
pub mod crt;
pub mod cvec;
pub mod lstsq;
pub mod matrix;
pub mod peaks;
pub mod spline;
pub mod stats;
pub mod unwrap;

pub use complex::Complex64;
pub use constants::{C_M_PER_NS, METERS_PER_NS, ns_to_m, m_to_ns};
