//! # chronos-math
//!
//! Numerics substrate for the Chronos reproduction.
//!
//! The offline dependency set deliberately excludes numerical crates
//! (`num-complex`, `ndarray`, `nalgebra`, ...), so everything the signal
//! processing pipeline needs is implemented here from scratch.
//!
//! [`complex`] provides double-precision complex arithmetic
//! ([`Complex64`]) with `num-complex`-style operators. Its workhorse is
//! `cis(θ) = e^{iθ}`: every channel model in the workspace is a sum of
//! `a · cis(-2π f τ)` terms (paper Eq. 2).
//!
//! [`cvec`] implements operations on complex vectors — dot products,
//! L2/L∞ norms, distances, in-place scaling — the inner loops of the
//! proximal-gradient solver (paper §6.2).
//!
//! [`cmatrix`] and [`matrix`] carry small dense complex/real matrices
//! with the factorizations the pipeline needs (LU, normal-equation
//! solves); [`lstsq`] builds linear and Gauss–Newton least squares on
//! top, used by LASSO debiasing and the §8 trilateration fit.
//!
//! [`spline`] implements the natural cubic spline Chronos uses to
//! interpolate CSI at the unmeasurable zero-subcarrier (paper §5,
//! footnote 3), plus [`spline::SplinePlan`]: a reusable factorization of
//! the knot-dependent tridiagonal system, bitwise-equivalent to a fresh
//! fit, built once per subcarrier layout and shared by every capture of
//! every client through the `chronos-core` plan cache.
//!
//! [`unwrap`] is 1-D phase unwrapping and wrapped-angle utilities —
//! needed because measured CSI phase arrives modulo 2π (and modulo π/2
//! on quirked 2.4 GHz captures, paper §11).
//!
//! [`crt`] solves noisy real-valued congruence systems by grid voting —
//! the construction behind the paper's Fig. 3, where each band pins the
//! ToF modulo `1/f_i` and the answer is wherever most congruences align
//! (§4). Exact integer CRT is included for tests and intuition.
//!
//! [`peaks`] extracts dominant peaks from magnitude profiles with
//! merge-radius and dominance rules — the substrate of the paper's
//! first-peak decision rule (§6, observation 1).
//!
//! [`stats`] provides the medians, percentiles, CDFs and histograms the
//! §12 evaluation harness reports, and [`constants`] the physical
//! constants (speed of light, ns↔m conversions) everything shares.
//!
//! All routines are deterministic and panic-free for finite inputs unless the
//! documentation explicitly states a precondition.

pub mod cmatrix;
pub mod complex;
pub mod constants;
pub mod crt;
pub mod cvec;
pub mod lanes;
pub mod lstsq;
pub mod matrix;
pub mod peaks;
pub mod spline;
pub mod stats;
pub mod unwrap;

pub use complex::Complex64;
pub use constants::{m_to_ns, ns_to_m, C_M_PER_NS, METERS_PER_NS};
