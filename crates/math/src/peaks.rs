//! Peak extraction on magnitude profiles.
//!
//! The output of the inverse-NDFT is a sampled multipath profile: magnitude
//! versus propagation delay. Chronos's decision rule (paper §6) is simple —
//! *the time-of-flight is the delay of the first dominant peak* — but making
//! that robust requires: local-maximum detection, a dominance threshold
//! relative to the strongest peak, merging of adjacent grid bins, and
//! sub-bin refinement via quadratic interpolation.

/// A detected peak in a sampled profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Peak {
    /// Index of the peak sample in the profile.
    pub index: usize,
    /// Refined abscissa (in the caller's x units) after quadratic
    /// interpolation around the peak sample.
    pub x: f64,
    /// Peak magnitude (at the refined vertex when interpolation applies).
    pub magnitude: f64,
}

/// Configuration for [`find_peaks`].
#[derive(Debug, Clone, Copy)]
pub struct PeakConfig {
    /// A peak is *dominant* when its magnitude is at least this fraction of
    /// the global maximum. The paper's profiles keep ~5 dominant peaks; 0.1
    /// reproduces that behaviour on our profiles.
    pub dominance: f64,
    /// Minimum separation between reported peaks, in samples. Adjacent bins
    /// belonging to one physical path are merged into the larger one.
    pub min_separation: usize,
}

impl Default for PeakConfig {
    fn default() -> Self {
        PeakConfig {
            dominance: 0.1,
            min_separation: 2,
        }
    }
}

/// Finds dominant local maxima of `profile`, where sample `i` sits at
/// abscissa `x0 + i * dx`.
///
/// Returns peaks sorted by ascending `x`. Plateaus report their left edge.
pub fn find_peaks(profile: &[f64], x0: f64, dx: f64, cfg: &PeakConfig) -> Vec<Peak> {
    let mut candidates = Vec::new();
    let mut out = Vec::new();
    find_peaks_into(profile, x0, dx, cfg, &mut candidates, &mut out);
    out
}

/// [`find_peaks`] into caller-provided buffers (`candidates` is working
/// storage, `out` receives the result). Identical output; no allocation
/// once the buffers have capacity.
pub fn find_peaks_into(
    profile: &[f64],
    x0: f64,
    dx: f64,
    cfg: &PeakConfig,
    candidates: &mut Vec<Peak>,
    out: &mut Vec<Peak>,
) {
    candidates.clear();
    out.clear();
    if profile.is_empty() {
        return;
    }
    // `f64::max` ignores NaN inputs, so the fold is NaN-free.
    let global_max = profile.iter().cloned().fold(f64::MIN, f64::max);
    if global_max <= 0.0 {
        return;
    }
    let threshold = global_max * cfg.dominance;

    let n = profile.len();
    for i in 0..n {
        let v = profile[i];
        if v < threshold {
            continue;
        }
        let left = if i == 0 { f64::MIN } else { profile[i - 1] };
        let right = if i + 1 == n { f64::MIN } else { profile[i + 1] };
        // Strictly greater than the left neighbour, at least equal to the
        // right: reports the left edge of plateaus exactly once.
        if v > left && v >= right {
            let (x, magnitude) = refine_quadratic(profile, i, x0, dx);
            candidates.push(Peak {
                index: i,
                x,
                magnitude,
            });
        }
    }

    // Enforce minimum separation, keeping the larger magnitude. The
    // unstable sorts break magnitude/x ties on the candidate index (which
    // the scan produced in ascending order), reproducing the stable-sort
    // order without its merge buffer.
    candidates.sort_unstable_by(|a, b| {
        b.magnitude
            .partial_cmp(&a.magnitude)
            .unwrap()
            .then(a.index.cmp(&b.index))
    });
    for c in candidates.iter() {
        if out
            .iter()
            .all(|k| k.index.abs_diff(c.index) >= cfg.min_separation)
        {
            out.push(*c);
        }
    }
    out.sort_unstable_by(|a, b| {
        a.x.partial_cmp(&b.x)
            .unwrap()
            .then(b.magnitude.partial_cmp(&a.magnitude).unwrap())
            .then(a.index.cmp(&b.index))
    });
}

/// The first (smallest-x) dominant peak — Chronos's time-of-flight rule.
pub fn first_peak(profile: &[f64], x0: f64, dx: f64, cfg: &PeakConfig) -> Option<Peak> {
    find_peaks(profile, x0, dx, cfg).into_iter().next()
}

/// Quadratic (parabolic) sub-bin refinement around sample `i`.
///
/// Fits a parabola through `(i-1, i, i+1)` and returns the vertex; falls back
/// to the sample itself at the boundaries or when the neighbourhood is not
/// concave.
fn refine_quadratic(profile: &[f64], i: usize, x0: f64, dx: f64) -> (f64, f64) {
    let n = profile.len();
    if i == 0 || i + 1 >= n {
        return (x0 + i as f64 * dx, profile[i]);
    }
    let (ym, y0, yp) = (profile[i - 1], profile[i], profile[i + 1]);
    let denom = ym - 2.0 * y0 + yp;
    if denom >= 0.0 {
        // Not strictly concave: keep the grid point.
        return (x0 + i as f64 * dx, y0);
    }
    let delta = 0.5 * (ym - yp) / denom; // in (-1, 1) for a true local max
    let delta = delta.clamp(-0.5, 0.5);
    let x = x0 + (i as f64 + delta) * dx;
    let y = y0 - 0.25 * (ym - yp) * delta;
    (x, y)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gaussian_profile(centers: &[(f64, f64)], n: usize, dx: f64, sigma: f64) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let x = i as f64 * dx;
                centers
                    .iter()
                    .map(|(c, a)| a * (-(x - c) * (x - c) / (2.0 * sigma * sigma)).exp())
                    .sum()
            })
            .collect()
    }

    #[test]
    fn finds_three_paper_peaks() {
        // Fig. 4: paths at 5.2, 10 and 16 ns with decreasing magnitudes.
        let profile = gaussian_profile(&[(5.2, 1.0), (10.0, 0.7), (16.0, 0.4)], 250, 0.1, 0.4);
        let peaks = find_peaks(&profile, 0.0, 0.1, &PeakConfig::default());
        assert_eq!(peaks.len(), 3, "{peaks:?}");
        assert!((peaks[0].x - 5.2).abs() < 0.05);
        assert!((peaks[1].x - 10.0).abs() < 0.05);
        assert!((peaks[2].x - 16.0).abs() < 0.05);
    }

    #[test]
    fn first_peak_is_earliest_not_strongest() {
        // Attenuated direct path before a strong reflection.
        let profile = gaussian_profile(&[(3.0, 0.5), (8.0, 1.0)], 200, 0.1, 0.3);
        let p = first_peak(&profile, 0.0, 0.1, &PeakConfig::default()).unwrap();
        assert!((p.x - 3.0).abs() < 0.05, "{p:?}");
    }

    #[test]
    fn dominance_filters_noise_bumps() {
        let mut profile = gaussian_profile(&[(5.0, 1.0)], 150, 0.1, 0.3);
        // Tiny ripple far below the 10% dominance threshold.
        for (i, v) in profile.iter_mut().enumerate() {
            *v += 0.01 * ((i as f64) * 1.7).sin().abs();
        }
        let peaks = find_peaks(&profile, 0.0, 0.1, &PeakConfig::default());
        assert_eq!(peaks.len(), 1, "{peaks:?}");
    }

    #[test]
    fn min_separation_merges_adjacent_bins() {
        // Two samples tied at the top in adjacent bins must yield one peak.
        let profile = vec![0.0, 0.2, 1.0, 0.95, 0.2, 0.0];
        let peaks = find_peaks(&profile, 0.0, 1.0, &PeakConfig::default());
        assert_eq!(peaks.len(), 1);
        assert_eq!(peaks[0].index, 2);
    }

    #[test]
    fn quadratic_refinement_beats_grid() {
        // True center at 5.23 ns, grid step 0.1 ns: refinement should land
        // within a few millimeters-equivalent of the truth.
        let profile = gaussian_profile(&[(5.23, 1.0)], 150, 0.1, 0.5);
        let p = first_peak(&profile, 0.0, 0.1, &PeakConfig::default()).unwrap();
        assert!((p.x - 5.23).abs() < 0.01, "x={}", p.x);
    }

    #[test]
    fn empty_and_flat_profiles() {
        assert!(find_peaks(&[], 0.0, 0.1, &PeakConfig::default()).is_empty());
        assert!(find_peaks(&[0.0; 10], 0.0, 0.1, &PeakConfig::default()).is_empty());
    }

    #[test]
    fn boundary_peak_reported_without_refinement() {
        let profile = vec![1.0, 0.5, 0.2, 0.1];
        let peaks = find_peaks(&profile, 2.0, 0.5, &PeakConfig::default());
        assert_eq!(peaks.len(), 1);
        assert_eq!(peaks[0].index, 0);
        assert_eq!(peaks[0].x, 2.0);
    }

    #[test]
    fn x0_offset_respected() {
        let profile = gaussian_profile(&[(4.0, 1.0)], 100, 0.1, 0.3);
        // Same profile, declared to start at x0 = 10: peak moves to 14.
        let p = first_peak(&profile, 10.0, 0.1, &PeakConfig::default()).unwrap();
        assert!((p.x - 14.0).abs() < 0.02);
    }
}
