//! One-dimensional phase unwrapping.
//!
//! Measured channel phase lives in `(-pi, pi]`; the underlying physical phase
//! `-2 pi f tau` is continuous in frequency. Before interpolating phase to
//! the zero-subcarrier (paper §5) the per-subcarrier phases must be unwrapped
//! so the spline sees a smooth curve rather than 2-pi jumps.

use std::f64::consts::PI;

/// Unwraps a phase sequence in place: whenever consecutive samples differ by
/// more than `pi`, a multiple of `2 pi` is added to the later samples so the
/// sequence becomes continuous.
pub fn unwrap_in_place(phases: &mut [f64]) {
    if phases.len() < 2 {
        return;
    }
    let mut offset = 0.0;
    let mut prev_raw = phases[0];
    for p in phases.iter_mut().skip(1) {
        let raw = *p;
        let mut d = raw - prev_raw;
        while d > PI {
            d -= 2.0 * PI;
            offset -= 2.0 * PI;
        }
        while d < -PI {
            d += 2.0 * PI;
            offset += 2.0 * PI;
        }
        prev_raw = raw;
        *p = raw + offset;
    }
}

/// Returns an unwrapped copy of `phases`.
pub fn unwrapped(phases: &[f64]) -> Vec<f64> {
    let mut out = phases.to_vec();
    unwrap_in_place(&mut out);
    out
}

/// Wraps a single phase into `(-pi, pi]`.
#[inline]
pub fn wrap_to_pi(phase: f64) -> f64 {
    let mut p = (phase + PI).rem_euclid(2.0 * PI) - PI;
    if p <= -PI {
        p += 2.0 * PI;
    }
    p
}

/// Smallest absolute angular difference between two phases, in `[0, pi]`.
#[inline]
pub fn angular_distance(a: f64, b: f64) -> f64 {
    wrap_to_pi(a - b).abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwrap_linear_ramp() {
        // True phase: steep line wrapping several times.
        let slope = 1.9; // rad per sample, just below pi
        let true_phase: Vec<f64> = (0..40).map(|i| slope * i as f64).collect();
        let wrapped: Vec<f64> = true_phase.iter().map(|p| wrap_to_pi(*p)).collect();
        let un = unwrapped(&wrapped);
        for (u, t) in un.iter().zip(true_phase.iter()) {
            // Unwrapped differs from truth only by a constant multiple of 2pi
            // (anchored at the first sample, which is 0 here).
            assert!((u - t).abs() < 1e-9, "u={u} t={t}");
        }
    }

    #[test]
    fn unwrap_negative_ramp() {
        let slope = -2.5;
        let true_phase: Vec<f64> = (0..30).map(|i| 0.4 + slope * i as f64).collect();
        let wrapped: Vec<f64> = true_phase.iter().map(|p| wrap_to_pi(*p)).collect();
        let un = unwrapped(&wrapped);
        let anchor = un[0] - true_phase[0];
        for (u, t) in un.iter().zip(true_phase.iter()) {
            assert!((u - t - anchor).abs() < 1e-9);
        }
    }

    #[test]
    fn unwrap_noop_when_smooth() {
        let smooth = [0.0, 0.1, 0.3, 0.2, -0.1];
        assert_eq!(unwrapped(&smooth), smooth.to_vec());
    }

    #[test]
    fn unwrap_short_inputs() {
        let mut empty: [f64; 0] = [];
        unwrap_in_place(&mut empty);
        let mut one = [1.0];
        unwrap_in_place(&mut one);
        assert_eq!(one, [1.0]);
    }

    #[test]
    fn wrap_to_pi_range() {
        for k in -20..=20 {
            let p = k as f64 * 0.7;
            let w = wrap_to_pi(p);
            assert!(w > -PI - 1e-12 && w <= PI + 1e-12, "w={w}");
            // Wrapped value differs by a multiple of 2 pi.
            let diff = (p - w) / (2.0 * PI);
            assert!((diff - diff.round()).abs() < 1e-9);
        }
    }

    #[test]
    fn angular_distance_symmetry() {
        assert!((angular_distance(0.1, -0.1) - 0.2).abs() < 1e-12);
        assert!((angular_distance(PI - 0.05, -PI + 0.05) - 0.1).abs() < 1e-9);
        assert!(angular_distance(1.0, 1.0) < 1e-12);
    }

    #[test]
    fn unwrap_channel_phase_use_case() {
        // Phase across subcarriers of a 20 MHz band for tau = 40 ns: slope
        // -2 pi * 312.5 kHz * 40 ns = -0.0785 rad per subcarrier; with a big
        // detection delay of 300 ns the slope wraps: -0.668 rad/subcarrier.
        let slope = -2.0 * PI * 312.5e3 * 340e-9;
        let phases: Vec<f64> = (0..57).map(|i| wrap_to_pi(slope * i as f64)).collect();
        let un = unwrapped(&phases);
        let est_slope = (un[56] - un[0]) / 56.0;
        assert!((est_slope - slope).abs() < 1e-9);
    }
}
