//! Chinese-remainder-theorem style congruence solving.
//!
//! Paper §4 reduces single-path time-of-flight recovery to a system of
//! congruences: each Wi-Fi band's channel phase pins `tau mod 1/f_i`. The
//! solution is unique modulo the LCM of the moduli (~200 ns across the 2.4 GHz
//! bands alone, i.e. 60 m of unambiguous range). Because measured phases are
//! noisy, we solve the system the way the paper's Fig. 3 illustrates: lay out
//! every candidate solution of every congruence on a fine grid and pick the
//! value where the most candidates align — **grid voting** — rather than
//! exact integer CRT (which is also provided, for tests and for intuition).

/// Exact CRT over integers for pairwise-coprime moduli.
///
/// Returns `x` with `x ≡ r_i (mod m_i)` for all i, in `[0, prod m_i)`, or
/// `None` if the system is inconsistent or moduli share factors in a way
/// that contradicts the residues.
pub fn integer_crt(residues: &[i128], moduli: &[i128]) -> Option<i128> {
    assert_eq!(residues.len(), moduli.len(), "integer_crt: length mismatch");
    let mut x: i128 = 0;
    let mut m: i128 = 1;
    for (&r, &mi) in residues.iter().zip(moduli.iter()) {
        assert!(mi > 0, "integer_crt: moduli must be positive");
        let (g, p, _q) = egcd(m, mi);
        if (r - x).rem_euclid(g) != 0 {
            return None;
        }
        let lcm = m / g * mi;
        let diff = (r - x).div_euclid(g);
        let step = (diff % (mi / g)) * p % (mi / g);
        x = (x + m * step).rem_euclid(lcm);
        m = lcm;
    }
    Some(x.rem_euclid(m))
}

/// Extended Euclid: returns `(g, x, y)` with `a x + b y = g = gcd(a, b)`.
fn egcd(a: i128, b: i128) -> (i128, i128, i128) {
    if b == 0 {
        (a, 1, 0)
    } else {
        let (g, x, y) = egcd(b, a.rem_euclid(b));
        (g, y, x - (a.div_euclid(b)) * y)
    }
}

/// One congruence `x ≡ remainder (mod modulus)` over the reals.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Congruence {
    /// The remainder, in `[0, modulus)`.
    pub remainder: f64,
    /// The (positive) modulus.
    pub modulus: f64,
}

impl Congruence {
    /// Creates a congruence, normalizing the remainder into `[0, modulus)`.
    pub fn new(remainder: f64, modulus: f64) -> Self {
        assert!(modulus > 0.0, "Congruence: modulus must be positive");
        Congruence {
            remainder: remainder.rem_euclid(modulus),
            modulus,
        }
    }

    /// Distance from `x` to the nearest solution of this congruence.
    pub fn distance(&self, x: f64) -> f64 {
        let r = (x - self.remainder).rem_euclid(self.modulus);
        r.min(self.modulus - r)
    }
}

/// Result of the voting solver.
#[derive(Debug, Clone, PartialEq)]
pub struct VoteSolution {
    /// The value with the most congruences aligned.
    pub value: f64,
    /// Number of congruences within tolerance at `value`.
    pub votes: usize,
    /// Mean absolute residual of the voting congruences at `value`.
    pub mean_residual: f64,
}

/// Solves a noisy real-valued congruence system by grid voting.
///
/// Scans `[0, range)` in steps of `step`; each grid point is scored by how
/// many congruences pass within `tol` of it (paper Fig. 3: "the solution that
/// satisfies most equations"). Ties are broken by mean residual. The winner
/// is then polished by averaging the nearest solution of every voting
/// congruence.
///
/// Returns `None` when the inputs are empty or no grid point gathers at
/// least two votes (a single vote carries no alignment information unless
/// there is exactly one congruence).
pub fn solve_by_voting(
    congruences: &[Congruence],
    range: f64,
    step: f64,
    tol: f64,
) -> Option<VoteSolution> {
    if congruences.is_empty() || range <= 0.0 || step <= 0.0 {
        return None;
    }
    let n_steps = (range / step).ceil() as usize;
    let mut best: Option<VoteSolution> = None;
    for k in 0..n_steps {
        let x = k as f64 * step;
        let mut votes = 0usize;
        let mut residual_sum = 0.0;
        for c in congruences {
            let d = c.distance(x);
            if d <= tol {
                votes += 1;
                residual_sum += d;
            }
        }
        if votes == 0 {
            continue;
        }
        let mean_residual = residual_sum / votes as f64;
        let better = match &best {
            None => true,
            Some(b) => votes > b.votes || (votes == b.votes && mean_residual < b.mean_residual),
        };
        if better {
            best = Some(VoteSolution {
                value: x,
                votes,
                mean_residual,
            });
        }
    }
    let mut sol = best?;
    if congruences.len() > 1 && sol.votes < 2 {
        return None;
    }
    // Polish: average the nearest solution of each congruence that voted.
    let mut acc = 0.0;
    let mut cnt = 0usize;
    for c in congruences {
        if c.distance(sol.value) <= tol {
            // Nearest representative of c around sol.value.
            let base = (sol.value - c.remainder) / c.modulus;
            let nearest = c.remainder + base.round() * c.modulus;
            acc += nearest;
            cnt += 1;
        }
    }
    if cnt > 0 {
        sol.value = acc / cnt as f64;
        sol.mean_residual = congruences
            .iter()
            .map(|c| c.distance(sol.value))
            .sum::<f64>()
            / congruences.len() as f64;
    }
    Some(sol)
}

/// Least common multiple of real moduli, treated on a rational grid of
/// `resolution` (e.g. 1e-3 ns). Useful to report the unambiguous range of a
/// band combination. Saturates at `f64::INFINITY` if the LCM overflows.
pub fn real_lcm(moduli: &[f64], resolution: f64) -> f64 {
    let mut acc: i128 = 1;
    for &m in moduli {
        let q = (m / resolution).round() as i128;
        if q <= 0 {
            continue;
        }
        let g = gcd_i128(acc, q);
        let next = (acc / g).checked_mul(q);
        match next {
            Some(v) => acc = v,
            None => return f64::INFINITY,
        }
        if acc > (1i128 << 100) {
            return f64::INFINITY;
        }
    }
    acc as f64 * resolution
}

fn gcd_i128(mut a: i128, mut b: i128) -> i128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a.abs().max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_crt_textbook() {
        // x = 2 mod 3, x = 3 mod 5, x = 2 mod 7 -> 23 (Sun Tzu's classic).
        let x = integer_crt(&[2, 3, 2], &[3, 5, 7]).unwrap();
        assert_eq!(x, 23);
    }

    #[test]
    fn integer_crt_non_coprime_consistent() {
        // x = 2 mod 4, x = 4 mod 6 -> x = 10 mod 12.
        let x = integer_crt(&[2, 4], &[4, 6]).unwrap();
        assert_eq!(x, 10);
    }

    #[test]
    fn integer_crt_inconsistent() {
        // x = 1 mod 4 and x = 2 mod 6 conflict modulo 2.
        assert_eq!(integer_crt(&[1, 2], &[4, 6]), None);
    }

    #[test]
    fn congruence_distance() {
        let c = Congruence::new(0.3, 1.0);
        assert!((c.distance(0.3) - 0.0).abs() < 1e-12);
        assert!((c.distance(1.3) - 0.0).abs() < 1e-12);
        assert!((c.distance(0.8) - 0.5).abs() < 1e-12);
        assert!((c.distance(0.9) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn voting_recovers_single_path_tof() {
        // The paper's Fig. 3 scenario: tau = 2 ns, five bands. Moduli are
        // 1/f in ns; remainders are tau mod 1/f.
        let tau = 2.0; // ns
        let freqs_ghz = [2.412, 2.462, 5.18, 5.3, 5.825];
        let congruences: Vec<Congruence> = freqs_ghz
            .iter()
            .map(|f| {
                let modulus = 1.0 / f; // ns
                Congruence::new(tau % modulus, modulus)
            })
            .collect();
        let sol = solve_by_voting(&congruences, 10.0, 0.001, 0.02).unwrap();
        assert_eq!(sol.votes, 5);
        assert!((sol.value - tau).abs() < 0.01, "value {}", sol.value);
    }

    #[test]
    fn voting_with_noise() {
        // Perturb remainders by +-5 ps; alignment should still find tau.
        let tau = 7.37;
        let freqs_ghz = [2.412, 2.437, 2.462, 5.18, 5.24, 5.3, 5.5, 5.745, 5.825];
        let mut congruences = Vec::new();
        for (i, f) in freqs_ghz.iter().enumerate() {
            let modulus = 1.0 / f;
            let noise = if i % 2 == 0 { 0.005 } else { -0.005 };
            congruences.push(Congruence::new((tau % modulus) + noise, modulus));
        }
        let sol = solve_by_voting(&congruences, 20.0, 0.001, 0.03).unwrap();
        assert!(sol.votes >= 8, "votes {}", sol.votes);
        assert!((sol.value - tau).abs() < 0.02, "value {}", sol.value);
    }

    #[test]
    fn voting_rejects_empty() {
        assert!(solve_by_voting(&[], 10.0, 0.01, 0.01).is_none());
    }

    #[test]
    fn voting_single_congruence_is_ambiguous_but_reported() {
        let c = [Congruence::new(0.1, 0.4)];
        let sol = solve_by_voting(&c, 1.0, 0.001, 0.01).unwrap();
        // With one congruence the first solution in range wins.
        assert!((sol.value - 0.1).abs() < 0.01);
    }

    #[test]
    fn real_lcm_of_wifi_moduli_exceeds_indoor_range() {
        // 2.4 GHz band moduli (~0.406..0.415 ns): LCM >> 200 ns when mixed.
        let moduli: Vec<f64> = [2.412f64, 2.437, 2.462].iter().map(|f| 1.0 / f).collect();
        let lcm = real_lcm(&moduli, 1e-4);
        assert!(lcm > 100.0, "lcm {lcm} ns");
    }

    #[test]
    fn polishing_improves_grid_quantization() {
        let tau = 2.3456789;
        let freqs_ghz = [2.412, 5.18, 5.825];
        let congruences: Vec<Congruence> = freqs_ghz
            .iter()
            .map(|f| Congruence::new(tau % (1.0 / f), 1.0 / f))
            .collect();
        // Coarse grid (10 ps) but polish should land within ~1 ps.
        let sol = solve_by_voting(&congruences, 10.0, 0.01, 0.02).unwrap();
        assert!((sol.value - tau).abs() < 0.002, "value {}", sol.value);
    }
}
