//! Physical constants and unit conversions used across the workspace.
//!
//! Chronos works in two natural unit systems: **nanoseconds** for propagation
//! delays (the quantity the estimator recovers) and **meters** for distances
//! (the quantity localization consumes). Conversions between them live here so
//! the factor of `c` is written exactly once.

/// Speed of light in vacuum, meters per second.
pub const C_M_PER_S: f64 = 299_792_458.0;

/// Speed of light, meters per nanosecond (~0.2998 m/ns).
pub const C_M_PER_NS: f64 = C_M_PER_S * 1e-9;

/// Alias: how many meters a signal travels in one nanosecond.
pub const METERS_PER_NS: f64 = C_M_PER_NS;

/// One nanosecond expressed in seconds.
pub const NS: f64 = 1e-9;

/// One gigahertz expressed in hertz.
pub const GHZ: f64 = 1e9;

/// One megahertz expressed in hertz.
pub const MHZ: f64 = 1e6;

/// Converts a time-of-flight in nanoseconds to a distance in meters.
#[inline]
pub fn ns_to_m(tau_ns: f64) -> f64 {
    tau_ns * C_M_PER_NS
}

/// Converts a distance in meters to a time-of-flight in nanoseconds.
#[inline]
pub fn m_to_ns(d_m: f64) -> f64 {
    d_m / C_M_PER_NS
}

/// Converts seconds to nanoseconds.
#[inline]
pub fn s_to_ns(s: f64) -> f64 {
    s * 1e9
}

/// Converts nanoseconds to seconds.
#[inline]
pub fn ns_to_s(ns: f64) -> f64 {
    ns * 1e-9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn light_travels_about_30cm_per_ns() {
        assert!((C_M_PER_NS - 0.299_792_458).abs() < 1e-12);
    }

    #[test]
    fn round_trip_m_ns() {
        for d in [0.01, 0.6, 1.4, 15.0, 60.0] {
            assert!((ns_to_m(m_to_ns(d)) - d).abs() < 1e-12);
        }
    }

    #[test]
    fn paper_example_two_ns_is_point_six_meters() {
        // Paper §4: "a source at 0.6 m whose time-of-flight is 2 ns".
        assert!((ns_to_m(2.0) - 0.6).abs() < 0.01);
    }

    #[test]
    fn paper_example_sixty_meters_is_two_hundred_ns() {
        // Paper §4: 200 ns of unambiguous range ~ 60 m.
        assert!((ns_to_m(200.0) - 60.0).abs() < 0.05);
    }

    #[test]
    fn seconds_round_trip() {
        assert!((ns_to_s(s_to_ns(1.5)) - 1.5).abs() < 1e-15);
    }
}
