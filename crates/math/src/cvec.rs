//! Operations on complex vectors.
//!
//! These are the primitives the NDFT and the proximal-gradient solver are
//! built from. All functions are allocation-conscious: the hot-path variants
//! write into caller-provided buffers.

use crate::complex::Complex64;

/// Hermitian inner product `<a, b> = sum_i conj(a_i) * b_i`.
///
/// # Panics
/// Panics if the vectors have different lengths.
pub fn dot(a: &[Complex64], b: &[Complex64]) -> Complex64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    let mut acc = Complex64::ZERO;
    for (x, y) in a.iter().zip(b.iter()) {
        acc += x.conj() * *y;
    }
    acc
}

/// Euclidean (L2) norm.
pub fn norm2(v: &[Complex64]) -> f64 {
    v.iter().map(|z| z.norm_sq()).sum::<f64>().sqrt()
}

/// Squared Euclidean norm.
pub fn norm2_sq(v: &[Complex64]) -> f64 {
    v.iter().map(|z| z.norm_sq()).sum::<f64>()
}

/// L1 norm: the sum of magnitudes. This is the sparsity objective of the
/// paper's Eq. 8.
pub fn norm1(v: &[Complex64]) -> f64 {
    v.iter().map(|z| z.abs()).sum::<f64>()
}

/// Infinity norm: the largest magnitude.
pub fn norm_inf(v: &[Complex64]) -> f64 {
    v.iter().map(|z| z.abs()).fold(0.0, f64::max)
}

/// `out = a - b`, element-wise.
///
/// # Panics
/// Panics if lengths differ.
pub fn sub_into(a: &[Complex64], b: &[Complex64], out: &mut [Complex64]) {
    assert!(
        a.len() == b.len() && a.len() == out.len(),
        "sub_into: length mismatch"
    );
    for i in 0..a.len() {
        out[i] = a[i] - b[i];
    }
}

/// `v *= k` for a real scalar.
pub fn scale_in_place(v: &mut [Complex64], k: f64) {
    for z in v.iter_mut() {
        *z = z.scale(k);
    }
}

/// `a += k * b` (complex axpy with real coefficient).
///
/// # Panics
/// Panics if lengths differ.
pub fn axpy(a: &mut [Complex64], k: f64, b: &[Complex64]) {
    assert_eq!(a.len(), b.len(), "axpy: length mismatch");
    for (x, y) in a.iter_mut().zip(b.iter()) {
        *x += y.scale(k);
    }
}

/// Euclidean distance between two vectors: `||a - b||_2`.
///
/// # Panics
/// Panics if lengths differ.
pub fn dist2(a: &[Complex64], b: &[Complex64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dist2: length mismatch");
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| (*x - *y).norm_sq())
        .sum::<f64>()
        .sqrt()
}

/// Element-wise product `out_i = a_i * b_i`.
///
/// # Panics
/// Panics if lengths differ.
pub fn hadamard_into(a: &[Complex64], b: &[Complex64], out: &mut [Complex64]) {
    assert!(
        a.len() == b.len() && a.len() == out.len(),
        "hadamard_into: length mismatch"
    );
    for i in 0..a.len() {
        out[i] = a[i] * b[i];
    }
}

/// Extracts magnitudes into a fresh `Vec<f64>`.
pub fn magnitudes(v: &[Complex64]) -> Vec<f64> {
    let mut out = Vec::new();
    magnitudes_into(v, &mut out);
    out
}

/// [`magnitudes`] into a caller-provided buffer (no allocation once `out`
/// has capacity).
pub fn magnitudes_into(v: &[Complex64], out: &mut Vec<f64>) {
    out.clear();
    out.extend(v.iter().map(|z| z.abs()));
}

/// Extracts phases (radians, `(-pi, pi]`) into a fresh `Vec<f64>`.
pub fn phases(v: &[Complex64]) -> Vec<f64> {
    v.iter().map(|z| z.arg()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64, im: f64) -> Complex64 {
        Complex64::new(re, im)
    }

    #[test]
    fn dot_is_hermitian() {
        let a = vec![c(1.0, 2.0), c(0.0, -1.0)];
        let b = vec![c(3.0, 0.0), c(1.0, 1.0)];
        let ab = dot(&a, &b);
        let ba = dot(&b, &a);
        assert!(ab.approx_eq(ba.conj(), 1e-12));
    }

    #[test]
    fn dot_with_self_is_norm_squared() {
        let a = vec![c(1.0, 2.0), c(-3.0, 0.5)];
        let d = dot(&a, &a);
        assert!((d.re - norm2_sq(&a)).abs() < 1e-12);
        assert!(d.im.abs() < 1e-12);
    }

    #[test]
    fn norms_ordering() {
        // For any vector: norm_inf <= norm2 <= norm1.
        let v = vec![c(1.0, 1.0), c(-2.0, 0.0), c(0.0, 0.5)];
        let (n1, n2, ni) = (norm1(&v), norm2(&v), norm_inf(&v));
        assert!(ni <= n2 + 1e-12);
        assert!(n2 <= n1 + 1e-12);
    }

    #[test]
    fn axpy_and_sub() {
        let mut a = vec![c(1.0, 0.0), c(0.0, 1.0)];
        let b = vec![c(2.0, 2.0), c(-1.0, 0.0)];
        axpy(&mut a, 0.5, &b);
        assert!(a[0].approx_eq(c(2.0, 1.0), 1e-12));
        assert!(a[1].approx_eq(c(-0.5, 1.0), 1e-12));

        let mut out = vec![Complex64::ZERO; 2];
        sub_into(&a, &b, &mut out);
        assert!(out[0].approx_eq(c(0.0, -1.0), 1e-12));
    }

    #[test]
    fn dist2_zero_on_identical() {
        let a = vec![c(1.0, -1.0); 5];
        assert_eq!(dist2(&a, &a), 0.0);
    }

    #[test]
    fn hadamard_elementwise() {
        let a = vec![c(0.0, 1.0), c(2.0, 0.0)];
        let b = vec![c(0.0, 1.0), c(0.5, 0.0)];
        let mut out = vec![Complex64::ZERO; 2];
        hadamard_into(&a, &b, &mut out);
        assert!(out[0].approx_eq(c(-1.0, 0.0), 1e-12));
        assert!(out[1].approx_eq(c(1.0, 0.0), 1e-12));
    }

    #[test]
    fn scale_in_place_halves() {
        let mut v = vec![c(2.0, -4.0)];
        scale_in_place(&mut v, 0.5);
        assert!(v[0].approx_eq(c(1.0, -2.0), 1e-12));
    }

    #[test]
    fn magnitude_phase_extraction() {
        let v = vec![
            Complex64::from_polar(2.0, 0.3),
            Complex64::from_polar(0.5, -1.2),
        ];
        let m = magnitudes(&v);
        let p = phases(&v);
        assert!((m[0] - 2.0).abs() < 1e-12 && (m[1] - 0.5).abs() < 1e-12);
        assert!((p[0] - 0.3).abs() < 1e-12 && (p[1] + 1.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        let _ = dot(&[Complex64::ONE], &[Complex64::ONE, Complex64::ONE]);
    }
}
