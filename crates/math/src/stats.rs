//! Summary statistics, empirical CDFs and histograms.
//!
//! Every figure in the paper's evaluation is either a CDF, a histogram, or a
//! bucketed error bar; this module provides those reductions for the
//! benchmark harness.

/// Arithmetic mean. Returns `NaN` for empty input.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation. Returns `NaN` for empty input.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Median (50th percentile). Returns `NaN` for empty input.
pub fn median(xs: &[f64]) -> f64 {
    percentile(xs, 50.0)
}

/// [`median`] that sorts the slice in place instead of cloning it — the
/// hot-path variant for callers that own a scratch buffer.
pub fn median_inplace(xs: &mut [f64]) -> f64 {
    percentile_inplace(xs, 50.0)
}

/// Root mean squared value (e.g. RMSE when `xs` are errors).
pub fn rms(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    (xs.iter().map(|x| x * x).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Percentile in `[0, 100]` by linear interpolation between order statistics
/// (the same convention as `numpy.percentile`). Returns `NaN` for empty
/// input.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    let mut sorted = xs.to_vec();
    percentile_inplace(&mut sorted, p)
}

/// [`percentile`] that sorts the slice in place instead of cloning it —
/// the single rank-interpolation implementation behind [`percentile`],
/// [`median`] and [`median_inplace`]. Values are plain `f64`s, so the
/// unstable sort produces the same order statistics as a stable one and
/// the result is identical.
pub fn percentile_inplace(xs: &mut [f64], p: f64) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
    let p = p.clamp(0.0, 100.0);
    let rank = p / 100.0 * (xs.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        xs[lo]
    } else {
        let t = rank - lo as f64;
        xs[lo] * (1.0 - t) + xs[hi] * t
    }
}

/// An empirical cumulative distribution function.
#[derive(Debug, Clone)]
pub struct Ecdf {
    /// Sorted sample values.
    pub values: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF from samples (copied and sorted).
    pub fn new(samples: &[f64]) -> Self {
        let mut values = samples.to_vec();
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Ecdf { values }
    }

    /// Fraction of samples `<= x`.
    pub fn eval(&self, x: f64) -> f64 {
        if self.values.is_empty() {
            return f64::NAN;
        }
        let idx = self.values.partition_point(|v| *v <= x);
        idx as f64 / self.values.len() as f64
    }

    /// Inverse CDF: the smallest sample with CDF >= `q` (`q` in `[0,1]`).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.values.is_empty() {
            return f64::NAN;
        }
        let q = q.clamp(0.0, 1.0);
        let idx = ((q * self.values.len() as f64).ceil() as usize).max(1) - 1;
        self.values[idx.min(self.values.len() - 1)]
    }

    /// Emits `(x, F(x))` pairs at every sample point — the exact staircase.
    pub fn points(&self) -> Vec<(f64, f64)> {
        let n = self.values.len() as f64;
        self.values
            .iter()
            .enumerate()
            .map(|(i, v)| (*v, (i + 1) as f64 / n))
            .collect()
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the ECDF has no samples.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// A fixed-width histogram over `[lo, hi)`.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    /// Samples below `lo` or at/above `hi`.
    pub out_of_range: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins spanning `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "Histogram: need at least one bin");
        assert!(hi > lo, "Histogram: hi must exceed lo");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            out_of_range: 0,
            total: 0,
        }
    }

    /// Adds a sample.
    pub fn add(&mut self, x: f64) {
        self.total += 1;
        if !x.is_finite() || x < self.lo || x >= self.hi {
            self.out_of_range += 1;
            return;
        }
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        let idx = ((x - self.lo) / w) as usize;
        let idx = idx.min(self.counts.len() - 1);
        self.counts[idx] += 1;
    }

    /// Adds every sample in a slice.
    pub fn add_all(&mut self, xs: &[f64]) {
        for &x in xs {
            self.add(x);
        }
    }

    /// `(bin_center, fraction_of_all_samples)` rows — the paper's Fig. 7(c)
    /// normalization ("fraction of packets").
    pub fn normalized(&self) -> Vec<(f64, f64)> {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        let total = self.total.max(1) as f64;
        self.counts
            .iter()
            .enumerate()
            .map(|(i, c)| (self.lo + w * (i as f64 + 0.5), *c as f64 / total))
            .collect()
    }

    /// Raw bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total samples offered (including out-of-range).
    pub fn total(&self) -> u64 {
        self.total
    }
}

/// Bucketed statistics: groups `(key, value)` samples into contiguous key
/// ranges and reports per-bucket mean/std — the reduction behind Fig. 8(a).
#[derive(Debug, Clone)]
pub struct Buckets {
    edges: Vec<f64>,
    samples: Vec<Vec<f64>>,
}

impl Buckets {
    /// Creates buckets with the given edges; bucket `i` spans
    /// `[edges[i], edges[i+1])`.
    ///
    /// # Panics
    /// Panics if fewer than two edges or edges are not increasing.
    pub fn new(edges: &[f64]) -> Self {
        assert!(edges.len() >= 2, "Buckets: need at least two edges");
        assert!(
            edges.windows(2).all(|w| w[1] > w[0]),
            "Buckets: edges must be strictly increasing"
        );
        Buckets {
            edges: edges.to_vec(),
            samples: vec![Vec::new(); edges.len() - 1],
        }
    }

    /// Adds a `(key, value)` sample; ignored when `key` is out of range.
    pub fn add(&mut self, key: f64, value: f64) {
        if key < self.edges[0] || key >= *self.edges.last().unwrap() {
            return;
        }
        let idx = self.edges.partition_point(|e| *e <= key) - 1;
        let idx = idx.min(self.samples.len() - 1);
        self.samples[idx].push(value);
    }

    /// Per-bucket `(range_label, mean, std, count)` rows.
    pub fn rows(&self) -> Vec<(String, f64, f64, usize)> {
        self.samples
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let label = format!("{:.0}-{:.0}", self.edges[i], self.edges[i + 1]);
                (label, mean(s), std_dev(s), s.len())
            })
            .collect()
    }

    /// Per-bucket medians.
    pub fn medians(&self) -> Vec<f64> {
        self.samples.iter().map(|s| median(s)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_inplace_matches_median() {
        for n in 1..12 {
            let xs: Vec<f64> = (0..n)
                .map(|i| ((i * 7919) % 13) as f64 * 0.37 - 1.0)
                .collect();
            let mut scratch = xs.clone();
            assert_eq!(
                median(&xs).to_bits(),
                median_inplace(&mut scratch).to_bits(),
                "n={n}"
            );
        }
        assert!(median_inplace(&mut []).is_nan());
    }

    #[test]
    fn mean_std_median_known() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
        assert!((median(&xs) - 4.5).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs_are_nan() {
        assert!(mean(&[]).is_nan());
        assert!(std_dev(&[]).is_nan());
        assert!(median(&[]).is_nan());
        assert!(rms(&[]).is_nan());
        assert!(percentile(&[], 50.0).is_nan());
    }

    #[test]
    fn percentile_interpolation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((percentile(&xs, 0.0) - 1.0).abs() < 1e-12);
        assert!((percentile(&xs, 100.0) - 4.0).abs() < 1e-12);
        assert!((percentile(&xs, 50.0) - 2.5).abs() < 1e-12);
        // Order independence.
        let shuffled = [3.0, 1.0, 4.0, 2.0];
        assert!((percentile(&shuffled, 50.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn rms_of_constant() {
        assert!((rms(&[3.0, 3.0, -3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn ecdf_staircase() {
        let e = Ecdf::new(&[1.0, 2.0, 2.0, 5.0]);
        assert!((e.eval(0.5) - 0.0).abs() < 1e-12);
        assert!((e.eval(1.0) - 0.25).abs() < 1e-12);
        assert!((e.eval(2.0) - 0.75).abs() < 1e-12);
        assert!((e.eval(10.0) - 1.0).abs() < 1e-12);
        assert_eq!(e.len(), 4);
    }

    #[test]
    fn ecdf_quantile_is_order_statistic() {
        let e = Ecdf::new(&[10.0, 20.0, 30.0, 40.0, 50.0]);
        assert_eq!(e.quantile(0.5), 30.0);
        assert_eq!(e.quantile(0.95), 50.0);
        assert_eq!(e.quantile(0.0), 10.0);
        // Median from ECDF matches `median` up to convention on even counts.
        let samples = [0.4, 0.1, 0.9, 0.5, 0.3];
        assert_eq!(Ecdf::new(&samples).quantile(0.5), 0.4);
    }

    #[test]
    fn ecdf_points_monotone() {
        let e = Ecdf::new(&[3.0, 1.0, 2.0]);
        let pts = e.points();
        assert_eq!(pts.len(), 3);
        assert!(pts.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 < w[1].1));
        assert!((pts.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_bins_and_normalization() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.add_all(&[0.5, 1.5, 1.6, 9.9, 10.0, -1.0, f64::NAN]);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[1], 2);
        assert_eq!(h.counts()[9], 1);
        assert_eq!(h.out_of_range, 3);
        let rows = h.normalized();
        assert!((rows[1].1 - 2.0 / 7.0).abs() < 1e-12);
        assert!((rows[0].0 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn buckets_rows() {
        let mut b = Buckets::new(&[0.0, 2.0, 4.0, 6.0]);
        b.add(1.0, 0.10);
        b.add(1.5, 0.20);
        b.add(3.0, 0.30);
        b.add(5.9, 0.40);
        b.add(6.0, 99.0); // out of range, dropped
        let rows = b.rows();
        assert_eq!(rows.len(), 3);
        assert!((rows[0].1 - 0.15).abs() < 1e-12);
        assert_eq!(rows[0].3, 2);
        assert!((rows[2].1 - 0.40).abs() < 1e-12);
        assert_eq!(rows[1].0, "2-4");
    }

    #[test]
    #[should_panic(expected = "need at least one bin")]
    fn histogram_zero_bins_panics() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }
}
