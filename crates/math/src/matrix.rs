//! Small dense real matrices with LU-based solves.
//!
//! The localization pipeline only ever needs tiny systems (2x2 Jacobians for
//! trilateration, a handful of normal equations for spline fits), so this is
//! a straightforward row-major `Vec<f64>` matrix with partial-pivot LU.
//! No attempt is made at cache blocking or SIMD; clarity and numerical
//! robustness win.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major `rows x cols` matrix of `f64`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

/// Errors produced by matrix factorizations and solves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatError {
    /// The matrix is singular (or numerically so) and cannot be factored.
    Singular,
    /// Operand dimensions are incompatible.
    DimensionMismatch,
}

impl fmt::Display for MatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatError::Singular => write!(f, "matrix is singular to working precision"),
            MatError::DimensionMismatch => write!(f, "incompatible matrix dimensions"),
        }
    }
}

impl std::error::Error for MatError {}

impl Mat {
    /// Creates a zero-filled `rows x cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a slice of rows.
    ///
    /// # Panics
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = if r == 0 { 0 } else { rows[0].len() };
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "from_rows: ragged rows");
            data.extend_from_slice(row);
        }
        Mat {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Matrix-vector product `A x`.
    ///
    /// # Panics
    /// Panics if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "mul_vec: dimension mismatch");
        let mut y = vec![0.0; self.rows];
        for (i, yi) in y.iter_mut().enumerate() {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            *yi = row.iter().zip(x.iter()).map(|(a, b)| a * b).sum();
        }
        y
    }

    /// Transposed matrix-vector product `A^T x`.
    ///
    /// # Panics
    /// Panics if `x.len() != self.rows()`.
    pub fn mul_vec_t(&self, x: &[f64]) -> Vec<f64> {
        let mut y = Vec::new();
        self.mul_vec_t_into(x, &mut y);
        y
    }

    /// [`Mat::mul_vec_t`] into a caller-provided buffer (identical
    /// arithmetic, no allocation once `y` has capacity).
    pub fn mul_vec_t_into(&self, x: &[f64], y: &mut Vec<f64>) {
        assert_eq!(x.len(), self.rows, "mul_vec_t: dimension mismatch");
        y.clear();
        y.resize(self.cols, 0.0);
        for (i, xi) in x.iter().enumerate() {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            for (j, a) in row.iter().enumerate() {
                y[j] += a * xi;
            }
        }
    }

    /// Reshapes this matrix in place to `rows x cols`, zero-filled,
    /// retaining the buffer's capacity.
    pub fn reset(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Copies another matrix's shape and contents into this one without
    /// reallocating when capacity suffices.
    pub fn copy_from(&mut self, other: &Mat) {
        self.rows = other.rows;
        self.cols = other.cols;
        self.data.clear();
        self.data.extend_from_slice(&other.data);
    }

    /// Matrix product `A B`.
    pub fn mul(&self, other: &Mat) -> Result<Mat, MatError> {
        if self.cols != other.rows {
            return Err(MatError::DimensionMismatch);
        }
        let mut out = Mat::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Transpose.
    pub fn transpose(&self) -> Mat {
        let mut out = Mat::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Gram matrix `A^T A` (used to form normal equations).
    pub fn gram(&self) -> Mat {
        let mut g = Mat::zeros(self.cols, self.cols);
        self.gram_into(&mut g);
        g
    }

    /// [`Mat::gram`] into a caller-provided matrix (identical arithmetic,
    /// no allocation once `g` has capacity).
    pub fn gram_into(&self, g: &mut Mat) {
        g.reset(self.cols, self.cols);
        for i in 0..self.rows {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            for j in 0..self.cols {
                if row[j] == 0.0 {
                    continue;
                }
                for k in j..self.cols {
                    g[(j, k)] += row[j] * row[k];
                }
            }
        }
        for j in 0..self.cols {
            for k in 0..j {
                g[(j, k)] = g[(k, j)];
            }
        }
    }

    /// Solves `A x = b` by LU decomposition with partial pivoting.
    ///
    /// Requires a square matrix; returns [`MatError::Singular`] when a pivot
    /// collapses below `1e-12` times the largest row scale.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, MatError> {
        let mut work = Vec::new();
        let mut scale = Vec::new();
        let mut x = Vec::new();
        self.solve_into(b, &mut work, &mut scale, &mut x)?;
        Ok(x)
    }

    /// [`Mat::solve`] with caller-provided working storage: `work`
    /// receives the eliminated copy of the matrix, `scale` the per-row
    /// pivot scales, `x` the solution. Identical arithmetic; no
    /// allocation once the buffers have capacity.
    pub fn solve_into(
        &self,
        b: &[f64],
        work: &mut Vec<f64>,
        scale: &mut Vec<f64>,
        x: &mut Vec<f64>,
    ) -> Result<(), MatError> {
        if self.rows != self.cols {
            return Err(MatError::DimensionMismatch);
        }
        if b.len() != self.rows {
            return Err(MatError::DimensionMismatch);
        }
        let n = self.rows;
        work.clear();
        work.extend_from_slice(&self.data);
        let a = work;
        x.clear();
        x.extend_from_slice(b);

        // Scale factor per row for pivot quality checks.
        scale.clear();
        scale.resize(n, 0.0);
        for i in 0..n {
            let s = a[i * n..(i + 1) * n]
                .iter()
                .fold(0.0f64, |m, v| m.max(v.abs()));
            if s == 0.0 {
                return Err(MatError::Singular);
            }
            scale[i] = s;
        }

        for col in 0..n {
            // Partial pivot: pick the row with the largest scaled magnitude.
            let mut pivot_row = col;
            let mut best = 0.0;
            for r in col..n {
                let v = (a[r * n + col] / scale[r]).abs();
                if v > best {
                    best = v;
                    pivot_row = r;
                }
            }
            let pivot = a[pivot_row * n + col];
            if pivot.abs() < 1e-12 * scale[pivot_row] {
                return Err(MatError::Singular);
            }
            if pivot_row != col {
                for j in 0..n {
                    a.swap(col * n + j, pivot_row * n + j);
                }
                x.swap(col, pivot_row);
                scale.swap(col, pivot_row);
            }
            let pivot = a[col * n + col];
            for r in (col + 1)..n {
                let factor = a[r * n + col] / pivot;
                if factor == 0.0 {
                    continue;
                }
                for j in col..n {
                    a[r * n + j] -= factor * a[col * n + j];
                }
                x[r] -= factor * x[col];
            }
        }

        // Back substitution.
        for col in (0..n).rev() {
            let mut sum = x[col];
            for j in (col + 1)..n {
                sum -= a[col * n + j] * x[j];
            }
            x[col] = sum / a[col * n + col];
        }
        Ok(())
    }
}

impl Index<(usize, usize)> for Mat {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Mat {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solve_returns_rhs() {
        let a = Mat::identity(4);
        let b = vec![1.0, -2.0, 3.0, 0.5];
        assert_eq!(a.solve(&b).unwrap(), b);
    }

    #[test]
    fn solve_known_2x2() {
        // [2 1; 1 3] x = [3; 5] -> x = [0.8, 1.4]
        let a = Mat::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let x = a.solve(&[3.0, 5.0]).unwrap();
        assert!((x[0] - 0.8).abs() < 1e-12);
        assert!((x[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Leading zero forces a row swap.
        let a = Mat::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = a.solve(&[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_detected() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert_eq!(a.solve(&[1.0, 2.0]), Err(MatError::Singular));
        let z = Mat::zeros(2, 2);
        assert_eq!(z.solve(&[0.0, 0.0]), Err(MatError::Singular));
    }

    #[test]
    fn mul_vec_and_transpose() {
        let a = Mat::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.mul_vec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
        assert_eq!(a.transpose().mul_vec(&[1.0, 1.0]), vec![5.0, 7.0, 9.0]);
        assert_eq!(a.mul_vec_t(&[1.0, 1.0]), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn gram_matches_at_a() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let g = a.gram();
        let expected = a.transpose().mul(&a).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                assert!((g[(i, j)] - expected[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn mul_dimension_mismatch() {
        let a = Mat::zeros(2, 3);
        let b = Mat::zeros(2, 3);
        assert_eq!(a.mul(&b).unwrap_err(), MatError::DimensionMismatch);
    }

    #[test]
    fn random_round_trip_solve() {
        // Well-conditioned random-ish system: verify A * solve(A, b) == b.
        let a = Mat::from_rows(&[
            &[4.0, 1.0, 0.3, -0.2],
            &[1.0, 5.0, 0.7, 0.1],
            &[0.3, 0.7, 3.0, 0.9],
            &[-0.2, 0.1, 0.9, 6.0],
        ]);
        let b = vec![1.0, 2.0, -3.0, 0.25];
        let x = a.solve(&b).unwrap();
        let back = a.mul_vec(&x);
        for (u, v) in back.iter().zip(b.iter()) {
            assert!((u - v).abs() < 1e-9);
        }
    }
}
