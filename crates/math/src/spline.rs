//! Cubic spline and linear interpolation.
//!
//! Chronos cannot measure the wireless channel at the OFDM zero-subcarrier
//! (it coincides with the DC offset of the radio hardware), yet §5 of the
//! paper shows that only that subcarrier is free of packet-detection delay.
//! The fix — paper footnote 3 — is to interpolate the measured phase across
//! the 30 populated subcarriers with a **cubic spline** and read off the
//! value at subcarrier zero. This module implements the natural cubic spline
//! used there, plus plain linear interpolation as the ablation baseline.

/// A natural cubic spline through `(x_i, y_i)` knots.
///
/// "Natural" boundary conditions (second derivative zero at both ends) match
/// the behaviour of MATLAB's `spline` in the interior and are well-behaved
/// for the mildly-curved phase profiles CSI produces.
#[derive(Debug, Clone, Default)]
pub struct CubicSpline {
    xs: Vec<f64>,
    ys: Vec<f64>,
    /// Second derivatives at the knots.
    m: Vec<f64>,
}

/// Errors constructing an interpolant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplineError {
    /// Fewer than two knots were provided.
    TooFewKnots,
    /// Knot abscissae are not strictly increasing.
    NotStrictlyIncreasing,
    /// Input lengths differ.
    LengthMismatch,
}

impl std::fmt::Display for SplineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SplineError::TooFewKnots => write!(f, "need at least two knots"),
            SplineError::NotStrictlyIncreasing => {
                write!(f, "knot x-values must be strictly increasing")
            }
            SplineError::LengthMismatch => write!(f, "xs and ys lengths differ"),
        }
    }
}

impl std::error::Error for SplineError {}

impl CubicSpline {
    /// Fits a natural cubic spline through the given knots.
    ///
    /// One-shot convenience over [`SplinePlan`]: factorizes the
    /// knot-dependent tridiagonal system (Thomas algorithm, natural BCs
    /// `m[0] = m[n-1] = 0`) and solves it in one call. Fitting many
    /// value sets over the *same* knots? Build the [`SplinePlan`] once
    /// and call [`SplinePlan::fit`] — identical results, no repeated
    /// factorization.
    pub fn fit(xs: &[f64], ys: &[f64]) -> Result<Self, SplineError> {
        if xs.len() != ys.len() {
            return Err(SplineError::LengthMismatch);
        }
        SplinePlan::new(xs)?.fit(ys)
    }

    /// Evaluates the spline at `x`.
    ///
    /// Outside the knot range the spline **extrapolates** with the boundary
    /// cubic segment; Chronos relies on this only for the tiny extrapolation
    /// from subcarrier ±1 to subcarrier 0, which is inside the knot hull
    /// anyway for the Intel 5300 layout.
    pub fn eval(&self, x: f64) -> f64 {
        let n = self.xs.len();
        // Locate segment by binary search; clamp to boundary segments.
        let seg = match self.xs.binary_search_by(|v| v.partial_cmp(&x).unwrap()) {
            Ok(i) => i.min(n - 2),
            Err(0) => 0,
            Err(i) if i >= n => n - 2,
            Err(i) => i - 1,
        };
        let (x0, x1) = (self.xs[seg], self.xs[seg + 1]);
        let (y0, y1) = (self.ys[seg], self.ys[seg + 1]);
        let (m0, m1) = (self.m[seg], self.m[seg + 1]);
        let h = x1 - x0;
        let a = (x1 - x) / h;
        let b = (x - x0) / h;
        a * y0 + b * y1 + ((a.powi(3) - a) * m0 + (b.powi(3) - b) * m1) * h * h / 6.0
    }

    /// Evaluates the first derivative at `x`.
    pub fn eval_deriv(&self, x: f64) -> f64 {
        let n = self.xs.len();
        let seg = match self.xs.binary_search_by(|v| v.partial_cmp(&x).unwrap()) {
            Ok(i) => i.min(n - 2),
            Err(0) => 0,
            Err(i) if i >= n => n - 2,
            Err(i) => i - 1,
        };
        let (x0, x1) = (self.xs[seg], self.xs[seg + 1]);
        let (y0, y1) = (self.ys[seg], self.ys[seg + 1]);
        let (m0, m1) = (self.m[seg], self.m[seg + 1]);
        let h = x1 - x0;
        let a = (x1 - x) / h;
        let b = (x - x0) / h;
        (y1 - y0) / h + ((1.0 - 3.0 * a * a) * m0 + (3.0 * b * b - 1.0) * m1) * h / 6.0
    }
}

/// A reusable natural-cubic-spline **plan** for a fixed set of knot
/// abscissae.
///
/// Fitting a spline solves a tridiagonal system whose matrix depends only
/// on the knot positions `xs`, not on the values `ys`. Chronos fits two
/// splines (phase and magnitude) over the *same* subcarrier grid for every
/// capture of every band of every sweep of every client — always the same
/// 30 abscissae — so the Thomas-algorithm factorization is precomputed
/// here once and replayed per fit. [`CubicSpline::fit`] is the one-shot
/// wrapper (`SplinePlan::new(xs)?.fit(ys)`), making plan-reuse
/// **bitwise-identical** to a fresh fit by construction; the plan only
/// removes the redundant refactorization.
///
/// This is one of the shared immutable plans a `PlanCache` (in
/// `chronos-core`) hands out to concurrent ranging sessions.
#[derive(Debug, Clone)]
pub struct SplinePlan {
    xs: Vec<f64>,
    /// Interval widths `h[i] = xs[i+1] - xs[i]`.
    h: Vec<f64>,
    /// Superdiagonal of the interior system (length `n - 2`).
    upper: Vec<f64>,
    /// Forward-elimination multipliers `w[i] = lower[i] / diag'[i-1]`
    /// (index 0 unused, kept for alignment with the textbook loop).
    w: Vec<f64>,
    /// Eliminated diagonal after the forward sweep.
    diag: Vec<f64>,
}

impl SplinePlan {
    /// Factorizes the spline system for the given knot abscissae.
    pub fn new(xs: &[f64]) -> Result<Self, SplineError> {
        let n = xs.len();
        if n < 2 {
            return Err(SplineError::TooFewKnots);
        }
        for win in xs.windows(2) {
            if win[1] <= win[0] {
                return Err(SplineError::NotStrictlyIncreasing);
            }
        }
        let h: Vec<f64> = xs.windows(2).map(|win| win[1] - win[0]).collect();
        let (mut diag, mut upper, mut w) = (Vec::new(), Vec::new(), Vec::new());
        if n > 2 {
            let k = n - 2;
            diag = vec![0.0; k];
            upper = vec![0.0; k];
            let mut lower = vec![0.0; k];
            w = vec![0.0; k];
            for i in 1..=k {
                diag[i - 1] = 2.0 * (h[i - 1] + h[i]);
                lower[i - 1] = h[i - 1];
                upper[i - 1] = h[i];
            }
            // Forward elimination of the matrix alone; the multipliers are
            // saved so each fit can replay them on its right-hand side.
            for i in 1..k {
                w[i] = lower[i] / diag[i - 1];
                diag[i] -= w[i] * upper[i - 1];
            }
        }
        Ok(SplinePlan {
            xs: xs.to_vec(),
            h,
            upper,
            w,
            diag,
        })
    }

    /// The knot abscissae this plan was built for.
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// Number of knots.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Whether the plan is empty (never true for a constructed plan).
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Fits a spline through `(xs, ys)` reusing the precomputed
    /// factorization. Produces bitwise-identical results to
    /// [`CubicSpline::fit`] on the same knots.
    pub fn fit(&self, ys: &[f64]) -> Result<CubicSpline, SplineError> {
        let mut ws = SplineScratch::default();
        let mut out = CubicSpline::default();
        self.fit_into(ys, &mut ws, &mut out)?;
        Ok(out)
    }

    /// [`SplinePlan::fit`] into a caller-provided spline and workspace —
    /// identical arithmetic, no allocation once the buffers have seen the
    /// knot count. The hot-path variant for per-capture interpolation.
    pub fn fit_into(
        &self,
        ys: &[f64],
        ws: &mut SplineScratch,
        out: &mut CubicSpline,
    ) -> Result<(), SplineError> {
        let n = self.xs.len();
        if ys.len() != n {
            return Err(SplineError::LengthMismatch);
        }
        out.m.clear();
        out.m.resize(n, 0.0);
        if n > 2 {
            let k = n - 2;
            let rhs = &mut ws.rhs;
            rhs.clear();
            rhs.resize(k, 0.0);
            for i in 1..=k {
                rhs[i - 1] =
                    6.0 * ((ys[i + 1] - ys[i]) / self.h[i] - (ys[i] - ys[i - 1]) / self.h[i - 1]);
            }
            for i in 1..k {
                rhs[i] -= self.w[i] * rhs[i - 1];
            }
            let sol = &mut ws.sol;
            sol.clear();
            sol.resize(k, 0.0);
            sol[k - 1] = rhs[k - 1] / self.diag[k - 1];
            for i in (0..k - 1).rev() {
                sol[i] = (rhs[i] - self.upper[i] * sol[i + 1]) / self.diag[i];
            }
            out.m[1..=k].copy_from_slice(sol);
        }
        out.xs.clone_from(&self.xs);
        out.ys.clear();
        out.ys.extend_from_slice(ys);
        Ok(())
    }
}

/// Reusable working storage for [`SplinePlan::fit_into`].
#[derive(Debug, Clone, Default)]
pub struct SplineScratch {
    rhs: Vec<f64>,
    sol: Vec<f64>,
}

/// Piecewise-linear interpolation at `x` over strictly-increasing knots.
///
/// Used as the ablation baseline against the cubic spline (DESIGN.md §4.3).
/// Extrapolates linearly beyond the boundary knots.
pub fn linear_interp(xs: &[f64], ys: &[f64], x: f64) -> f64 {
    assert_eq!(xs.len(), ys.len(), "linear_interp: length mismatch");
    assert!(xs.len() >= 2, "linear_interp: need two knots");
    let n = xs.len();
    let seg = match xs.binary_search_by(|v| v.partial_cmp(&x).unwrap()) {
        Ok(i) => return ys[i],
        Err(0) => 0,
        Err(i) if i >= n => n - 2,
        Err(i) => i - 1,
    };
    let t = (x - xs[seg]) / (xs[seg + 1] - xs[seg]);
    ys[seg] + t * (ys[seg + 1] - ys[seg])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spline_reproduces_knots() {
        let xs = [-3.0, -1.0, 0.5, 2.0, 4.0];
        let ys = [1.0, -2.0, 0.0, 3.0, 3.5];
        let s = CubicSpline::fit(&xs, &ys).unwrap();
        for (x, y) in xs.iter().zip(ys.iter()) {
            assert!((s.eval(*x) - y).abs() < 1e-12);
        }
    }

    #[test]
    fn spline_interpolates_line_exactly() {
        // A line is a cubic spline with zero curvature everywhere.
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x - 2.0).collect();
        let s = CubicSpline::fit(&xs, &ys).unwrap();
        for k in 0..90 {
            let x = k as f64 * 0.1;
            assert!((s.eval(x) - (3.0 * x - 2.0)).abs() < 1e-10);
            assert!((s.eval_deriv(x) - 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn spline_close_on_smooth_function() {
        // Interpolating sin over a dense grid should be accurate mid-segment.
        let xs: Vec<f64> = (0..30).map(|i| i as f64 * 0.25).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x.sin()).collect();
        let s = CubicSpline::fit(&xs, &ys).unwrap();
        for k in 1..100 {
            let x = 0.05 + k as f64 * 0.07;
            if x > 7.0 {
                break;
            }
            assert!((s.eval(x) - x.sin()).abs() < 1e-3, "x={x}");
        }
    }

    #[test]
    fn zero_subcarrier_use_case() {
        // The real use case: phase across subcarriers [-28..28] without 0,
        // linear in subcarrier index; spline at 0 recovers the line value.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        let slope = -0.043;
        let intercept = 1.234;
        for k in (-28i32..=28).filter(|k| *k != 0) {
            xs.push(k as f64);
            ys.push(slope * k as f64 + intercept);
        }
        let s = CubicSpline::fit(&xs, &ys).unwrap();
        assert!((s.eval(0.0) - intercept).abs() < 1e-9);
    }

    #[test]
    fn errors_reported() {
        assert_eq!(
            CubicSpline::fit(&[1.0], &[1.0]).unwrap_err(),
            SplineError::TooFewKnots
        );
        assert_eq!(
            CubicSpline::fit(&[1.0, 1.0], &[1.0, 2.0]).unwrap_err(),
            SplineError::NotStrictlyIncreasing
        );
        assert_eq!(
            CubicSpline::fit(&[1.0, 2.0], &[1.0]).unwrap_err(),
            SplineError::LengthMismatch
        );
    }

    #[test]
    fn two_knot_spline_is_linear() {
        let s = CubicSpline::fit(&[0.0, 2.0], &[1.0, 5.0]).unwrap();
        assert!((s.eval(1.0) - 3.0).abs() < 1e-12);
        assert!((s.eval_deriv(0.5) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn linear_interp_basics() {
        let xs = [0.0, 1.0, 2.0];
        let ys = [0.0, 10.0, 0.0];
        assert!((linear_interp(&xs, &ys, 0.5) - 5.0).abs() < 1e-12);
        assert!((linear_interp(&xs, &ys, 1.0) - 10.0).abs() < 1e-12);
        assert!((linear_interp(&xs, &ys, 1.75) - 2.5).abs() < 1e-12);
        // Extrapolation continues the boundary segment.
        assert!((linear_interp(&xs, &ys, -1.0) + 10.0).abs() < 1e-12);
    }

    #[test]
    fn plan_fit_is_bitwise_identical_to_direct_fit() {
        let xs: Vec<f64> = (-28i32..=28)
            .filter(|k| *k != 0)
            .map(|k| k as f64)
            .collect();
        let plan = SplinePlan::new(&xs).unwrap();
        for trial in 0..5 {
            let ys: Vec<f64> = xs
                .iter()
                .map(|x| (0.3 * x + trial as f64).sin() + 0.01 * x * x)
                .collect();
            let direct = CubicSpline::fit(&xs, &ys).unwrap();
            let planned = plan.fit(&ys).unwrap();
            for (a, b) in direct.m.iter().zip(planned.m.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "second derivatives differ");
            }
            for x in [-27.5, -3.2, 0.0, 1.7, 26.9] {
                assert_eq!(direct.eval(x).to_bits(), planned.eval(x).to_bits());
            }
        }
    }

    #[test]
    fn plan_rejects_bad_inputs() {
        assert_eq!(
            SplinePlan::new(&[1.0]).unwrap_err(),
            SplineError::TooFewKnots
        );
        assert_eq!(
            SplinePlan::new(&[1.0, 1.0]).unwrap_err(),
            SplineError::NotStrictlyIncreasing
        );
        let plan = SplinePlan::new(&[0.0, 1.0, 2.0]).unwrap();
        assert_eq!(
            plan.fit(&[1.0, 2.0]).unwrap_err(),
            SplineError::LengthMismatch
        );
        assert_eq!(plan.len(), 3);
        assert!(!plan.is_empty());
    }

    #[test]
    fn plan_two_knot_fit() {
        let plan = SplinePlan::new(&[0.0, 2.0]).unwrap();
        let s = plan.fit(&[1.0, 5.0]).unwrap();
        assert!((s.eval(1.0) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn deriv_matches_finite_difference() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64 * 0.5).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (0.3 * x).cos() + 0.1 * x * x).collect();
        let s = CubicSpline::fit(&xs, &ys).unwrap();
        for k in 1..40 {
            let x = 0.3 + k as f64 * 0.2;
            if x >= 9.0 {
                break;
            }
            let h = 1e-6;
            let fd = (s.eval(x + h) - s.eval(x - h)) / (2.0 * h);
            assert!((s.eval_deriv(x) - fd).abs() < 1e-6, "x={x}");
        }
    }
}
