//! Linear and nonlinear least squares.
//!
//! * [`linear_lstsq`] solves over-determined `A x ~ b` via normal equations
//!   with a Tikhonov fallback when the Gram matrix is ill-conditioned.
//! * [`GaussNewton`] minimizes a sum of squared residuals for small nonlinear
//!   problems — Chronos uses it to intersect ranging circles (paper §8).

use crate::matrix::{Mat, MatError};

/// Solves the over-determined linear least-squares problem `min ||A x - b||_2`.
///
/// Uses the normal equations `A^T A x = A^T b`. If the Gram matrix is singular
/// the solve is retried with a small ridge term (`1e-9` on the diagonal),
/// which is appropriate for the well-scaled geometry problems in this
/// workspace.
pub fn linear_lstsq(a: &Mat, b: &[f64]) -> Result<Vec<f64>, MatError> {
    if b.len() != a.rows() {
        return Err(MatError::DimensionMismatch);
    }
    let gram = a.gram();
    let atb = a.mul_vec_t(b);
    match gram.solve(&atb) {
        Ok(x) => Ok(x),
        Err(MatError::Singular) => {
            let mut ridged = gram;
            for i in 0..ridged.rows() {
                ridged[(i, i)] += 1e-9;
            }
            ridged.solve(&atb)
        }
        Err(e) => Err(e),
    }
}

/// A residual function for [`GaussNewton`]: given parameters, fill the
/// residual vector. The Jacobian is computed by forward finite differences.
pub trait Residuals {
    /// Number of residual terms.
    fn len(&self) -> usize;
    /// Whether there are no residuals.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Evaluates residuals at `params` into `out` (`out.len() == self.len()`).
    fn eval(&self, params: &[f64], out: &mut [f64]);
}

/// Result of a Gauss–Newton run.
#[derive(Debug, Clone)]
pub struct FitResult {
    /// Optimized parameters.
    pub params: Vec<f64>,
    /// Final sum of squared residuals.
    pub cost: f64,
    /// Number of iterations performed.
    pub iterations: usize,
    /// Whether the convergence tolerance was reached (vs. iteration cap).
    pub converged: bool,
}

/// Dampened Gauss–Newton minimizer for small problems (2–4 parameters).
///
/// The damping (Levenberg-style additive lambda) makes the solver robust to
/// the locally-flat cost surfaces that show up when ranging circles barely
/// overlap.
#[derive(Debug, Clone)]
pub struct GaussNewton {
    /// Maximum number of iterations.
    pub max_iters: usize,
    /// Convergence threshold on the parameter-step norm.
    pub step_tol: f64,
    /// Finite-difference step for the Jacobian.
    pub fd_step: f64,
    /// Initial damping factor.
    pub lambda0: f64,
}

impl Default for GaussNewton {
    fn default() -> Self {
        GaussNewton {
            max_iters: 100,
            step_tol: 1e-10,
            fd_step: 1e-6,
            lambda0: 1e-3,
        }
    }
}

/// Reusable working storage for [`GaussNewton::minimize_with`]: every
/// intermediate the solver needs (Jacobian, normal equations, damping
/// copies, trial vectors) lives here, so repeated fits stop allocating
/// once the workspace has seen the largest problem size.
///
/// After a fit, [`GnWorkspace::params`] holds the optimized parameters.
#[derive(Debug, Clone, Default)]
pub struct GnWorkspace {
    /// Optimized parameters of the most recent fit.
    pub params: Vec<f64>,
    r: Vec<f64>,
    r_trial: Vec<f64>,
    r_pert: Vec<f64>,
    perturbed: Vec<f64>,
    trial: Vec<f64>,
    jac: Mat,
    jtj: Mat,
    damped: Mat,
    jtr: Vec<f64>,
    rhs: Vec<f64>,
    dx: Vec<f64>,
    solve_work: Vec<f64>,
    solve_scale: Vec<f64>,
}

/// Scalar outcome of a [`GaussNewton::minimize_with`] run; the parameters
/// stay in the workspace.
#[derive(Debug, Clone, Copy)]
pub struct FitStats {
    /// Final sum of squared residuals.
    pub cost: f64,
    /// Number of iterations performed.
    pub iterations: usize,
    /// Whether the convergence tolerance was reached (vs. iteration cap).
    pub converged: bool,
}

impl GaussNewton {
    /// Minimizes `||r(params)||^2` starting from `x0`.
    pub fn minimize<R: Residuals>(&self, residuals: &R, x0: &[f64]) -> FitResult {
        let mut ws = GnWorkspace::default();
        let stats = self.minimize_with(residuals, x0, &mut ws);
        FitResult {
            params: ws.params,
            cost: stats.cost,
            iterations: stats.iterations,
            converged: stats.converged,
        }
    }

    /// [`GaussNewton::minimize`] with a reusable workspace — identical
    /// arithmetic (bit for bit), no allocation once `ws` has seen the
    /// problem size. The optimized parameters land in `ws.params`.
    pub fn minimize_with<R: Residuals>(
        &self,
        residuals: &R,
        x0: &[f64],
        ws: &mut GnWorkspace,
    ) -> FitStats {
        let n = x0.len();
        let m = residuals.len();
        ws.params.clear();
        ws.params.extend_from_slice(x0);
        ws.r.clear();
        ws.r.resize(m, 0.0);
        ws.r_trial.clear();
        ws.r_trial.resize(m, 0.0);
        residuals.eval(&ws.params, &mut ws.r);
        let mut cost: f64 = ws.r.iter().map(|v| v * v).sum();
        let mut lambda = self.lambda0;

        let mut iterations = 0;
        let mut converged = false;

        for _ in 0..self.max_iters {
            iterations += 1;
            // Finite-difference Jacobian, m x n.
            ws.jac.reset(m, n);
            ws.perturbed.clear();
            ws.perturbed.extend_from_slice(&ws.params);
            ws.r_pert.clear();
            ws.r_pert.resize(m, 0.0);
            for j in 0..n {
                let h = self.fd_step * ws.params[j].abs().max(1.0);
                ws.perturbed[j] = ws.params[j] + h;
                residuals.eval(&ws.perturbed, &mut ws.r_pert);
                for i in 0..m {
                    ws.jac[(i, j)] = (ws.r_pert[i] - ws.r[i]) / h;
                }
                ws.perturbed[j] = ws.params[j];
            }

            // Solve (J^T J + lambda I) dx = -J^T r.
            ws.jac.gram_into(&mut ws.jtj);
            ws.jac.mul_vec_t_into(&ws.r, &mut ws.jtr);
            let mut improved = false;
            for _ in 0..8 {
                ws.damped.copy_from(&ws.jtj);
                for d in 0..n {
                    ws.damped[(d, d)] += lambda;
                }
                ws.rhs.clear();
                ws.rhs.extend(ws.jtr.iter().map(|v| -v));
                if ws
                    .damped
                    .solve_into(&ws.rhs, &mut ws.solve_work, &mut ws.solve_scale, &mut ws.dx)
                    .is_err()
                {
                    lambda *= 10.0;
                    continue;
                }
                ws.trial.clear();
                ws.trial
                    .extend(ws.params.iter().zip(ws.dx.iter()).map(|(p, d)| p + d));
                residuals.eval(&ws.trial, &mut ws.r_trial);
                let trial_cost: f64 = ws.r_trial.iter().map(|v| v * v).sum();
                if trial_cost < cost {
                    let step_norm = ws.dx.iter().map(|v| v * v).sum::<f64>().sqrt();
                    std::mem::swap(&mut ws.params, &mut ws.trial);
                    std::mem::swap(&mut ws.r, &mut ws.r_trial);
                    cost = trial_cost;
                    lambda = (lambda * 0.5).max(1e-12);
                    improved = true;
                    if step_norm < self.step_tol {
                        converged = true;
                    }
                    break;
                }
                lambda *= 10.0;
            }
            if converged || !improved {
                converged = converged || !improved && cost.is_finite();
                break;
            }
        }

        FitStats {
            cost,
            iterations,
            converged,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_fit_line() {
        // Fit y = 2x + 1 through exact points.
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [1.0, 3.0, 5.0, 7.0];
        let mut a = Mat::zeros(4, 2);
        for (i, x) in xs.iter().enumerate() {
            a[(i, 0)] = *x;
            a[(i, 1)] = 1.0;
        }
        let sol = linear_lstsq(&a, &ys).unwrap();
        assert!((sol[0] - 2.0).abs() < 1e-10);
        assert!((sol[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn linear_fit_overdetermined_noisy() {
        // y = -0.5x + 4 with symmetric noise: LS recovers exact slope.
        let pts = [
            (0.0, 4.1),
            (1.0, 3.4),
            (2.0, 3.1),
            (3.0, 2.4),
            (4.0, 2.1),
            (5.0, 1.4),
        ];
        let mut a = Mat::zeros(pts.len(), 2);
        let mut b = vec![0.0; pts.len()];
        for (i, (x, y)) in pts.iter().enumerate() {
            a[(i, 0)] = *x;
            a[(i, 1)] = 1.0;
            b[i] = *y;
        }
        let sol = linear_lstsq(&a, &b).unwrap();
        assert!((sol[0] + 0.5).abs() < 0.05, "slope {}", sol[0]);
        assert!((sol[1] - 4.0).abs() < 0.12, "intercept {}", sol[1]);
    }

    struct CircleFit {
        // Points on a circle; parameters are (cx, cy, r).
        pts: Vec<(f64, f64)>,
    }

    impl Residuals for CircleFit {
        fn len(&self) -> usize {
            self.pts.len()
        }
        fn eval(&self, p: &[f64], out: &mut [f64]) {
            for (i, (x, y)) in self.pts.iter().enumerate() {
                out[i] = ((x - p[0]).powi(2) + (y - p[1]).powi(2)).sqrt() - p[2];
            }
        }
    }

    #[test]
    fn gauss_newton_circle() {
        // Points on the circle centered (1, -2) radius 3.
        let mut pts = Vec::new();
        for k in 0..12 {
            let t = 2.0 * std::f64::consts::PI * k as f64 / 12.0;
            pts.push((1.0 + 3.0 * t.cos(), -2.0 + 3.0 * t.sin()));
        }
        let fit = GaussNewton::default().minimize(&CircleFit { pts }, &[0.0, 0.0, 1.0]);
        assert!(fit.cost < 1e-12, "cost {}", fit.cost);
        assert!((fit.params[0] - 1.0).abs() < 1e-5);
        assert!((fit.params[1] + 2.0).abs() < 1e-5);
        assert!((fit.params[2] - 3.0).abs() < 1e-5);
    }

    struct Rosenbrock;
    impl Residuals for Rosenbrock {
        fn len(&self) -> usize {
            2
        }
        fn eval(&self, p: &[f64], out: &mut [f64]) {
            out[0] = 10.0 * (p[1] - p[0] * p[0]);
            out[1] = 1.0 - p[0];
        }
    }

    #[test]
    fn gauss_newton_rosenbrock() {
        let fit = GaussNewton {
            max_iters: 500,
            ..Default::default()
        }
        .minimize(&Rosenbrock, &[-1.2, 1.0]);
        assert!((fit.params[0] - 1.0).abs() < 1e-4, "{:?}", fit.params);
        assert!((fit.params[1] - 1.0).abs() < 1e-4);
    }

    #[test]
    fn minimize_with_is_bitwise_identical_and_reusable() {
        let mut pts = Vec::new();
        for k in 0..12 {
            let t = 2.0 * std::f64::consts::PI * k as f64 / 12.0;
            pts.push((1.0 + 3.0 * t.cos(), -2.0 + 3.0 * t.sin()));
        }
        let problem = CircleFit { pts };
        let gn = GaussNewton::default();
        let fresh = gn.minimize(&problem, &[0.0, 0.0, 1.0]);
        let mut ws = GnWorkspace::default();
        // A warm workspace (dirtied by a different fit) must reproduce the
        // fresh run bit for bit.
        gn.minimize_with(&Rosenbrock, &[-1.2, 1.0], &mut ws);
        let stats = gn.minimize_with(&problem, &[0.0, 0.0, 1.0], &mut ws);
        assert_eq!(stats.cost.to_bits(), fresh.cost.to_bits());
        assert_eq!(stats.iterations, fresh.iterations);
        assert_eq!(stats.converged, fresh.converged);
        for (a, b) in ws.params.iter().zip(fresh.params.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn gauss_newton_from_solution_stays() {
        let mut pts = Vec::new();
        for k in 0..8 {
            let t = 2.0 * std::f64::consts::PI * k as f64 / 8.0;
            pts.push((t.cos(), t.sin()));
        }
        let fit = GaussNewton::default().minimize(&CircleFit { pts }, &[0.0, 0.0, 1.0]);
        assert!(fit.cost < 1e-18);
        assert!(fit.iterations <= 3);
    }
}
