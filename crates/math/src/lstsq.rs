//! Linear and nonlinear least squares.
//!
//! * [`linear_lstsq`] solves over-determined `A x ~ b` via normal equations
//!   with a Tikhonov fallback when the Gram matrix is ill-conditioned.
//! * [`GaussNewton`] minimizes a sum of squared residuals for small nonlinear
//!   problems — Chronos uses it to intersect ranging circles (paper §8).

use crate::matrix::{Mat, MatError};

/// Solves the over-determined linear least-squares problem `min ||A x - b||_2`.
///
/// Uses the normal equations `A^T A x = A^T b`. If the Gram matrix is singular
/// the solve is retried with a small ridge term (`1e-9` on the diagonal),
/// which is appropriate for the well-scaled geometry problems in this
/// workspace.
pub fn linear_lstsq(a: &Mat, b: &[f64]) -> Result<Vec<f64>, MatError> {
    if b.len() != a.rows() {
        return Err(MatError::DimensionMismatch);
    }
    let gram = a.gram();
    let atb = a.mul_vec_t(b);
    match gram.solve(&atb) {
        Ok(x) => Ok(x),
        Err(MatError::Singular) => {
            let mut ridged = gram;
            for i in 0..ridged.rows() {
                ridged[(i, i)] += 1e-9;
            }
            ridged.solve(&atb)
        }
        Err(e) => Err(e),
    }
}

/// A residual function for [`GaussNewton`]: given parameters, fill the
/// residual vector. The Jacobian is computed by forward finite differences.
pub trait Residuals {
    /// Number of residual terms.
    fn len(&self) -> usize;
    /// Whether there are no residuals.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Evaluates residuals at `params` into `out` (`out.len() == self.len()`).
    fn eval(&self, params: &[f64], out: &mut [f64]);
}

/// Result of a Gauss–Newton run.
#[derive(Debug, Clone)]
pub struct FitResult {
    /// Optimized parameters.
    pub params: Vec<f64>,
    /// Final sum of squared residuals.
    pub cost: f64,
    /// Number of iterations performed.
    pub iterations: usize,
    /// Whether the convergence tolerance was reached (vs. iteration cap).
    pub converged: bool,
}

/// Dampened Gauss–Newton minimizer for small problems (2–4 parameters).
///
/// The damping (Levenberg-style additive lambda) makes the solver robust to
/// the locally-flat cost surfaces that show up when ranging circles barely
/// overlap.
#[derive(Debug, Clone)]
pub struct GaussNewton {
    /// Maximum number of iterations.
    pub max_iters: usize,
    /// Convergence threshold on the parameter-step norm.
    pub step_tol: f64,
    /// Finite-difference step for the Jacobian.
    pub fd_step: f64,
    /// Initial damping factor.
    pub lambda0: f64,
}

impl Default for GaussNewton {
    fn default() -> Self {
        GaussNewton {
            max_iters: 100,
            step_tol: 1e-10,
            fd_step: 1e-6,
            lambda0: 1e-3,
        }
    }
}

impl GaussNewton {
    /// Minimizes `||r(params)||^2` starting from `x0`.
    pub fn minimize<R: Residuals>(&self, residuals: &R, x0: &[f64]) -> FitResult {
        let n = x0.len();
        let m = residuals.len();
        let mut params = x0.to_vec();
        let mut r = vec![0.0; m];
        let mut r_trial = vec![0.0; m];
        residuals.eval(&params, &mut r);
        let mut cost: f64 = r.iter().map(|v| v * v).sum();
        let mut lambda = self.lambda0;

        let mut iterations = 0;
        let mut converged = false;

        for _ in 0..self.max_iters {
            iterations += 1;
            // Finite-difference Jacobian, m x n.
            let mut jac = Mat::zeros(m, n);
            let mut perturbed = params.clone();
            let mut r_pert = vec![0.0; m];
            for j in 0..n {
                let h = self.fd_step * params[j].abs().max(1.0);
                perturbed[j] = params[j] + h;
                residuals.eval(&perturbed, &mut r_pert);
                for i in 0..m {
                    jac[(i, j)] = (r_pert[i] - r[i]) / h;
                }
                perturbed[j] = params[j];
            }

            // Solve (J^T J + lambda I) dx = -J^T r.
            let mut jtj = jac.gram();
            let jtr = jac.mul_vec_t(&r);
            let mut improved = false;
            for _ in 0..8 {
                let mut damped = jtj.clone();
                for d in 0..n {
                    damped[(d, d)] += lambda;
                }
                let rhs: Vec<f64> = jtr.iter().map(|v| -v).collect();
                let Ok(dx) = damped.solve(&rhs) else {
                    lambda *= 10.0;
                    continue;
                };
                let trial: Vec<f64> = params.iter().zip(dx.iter()).map(|(p, d)| p + d).collect();
                residuals.eval(&trial, &mut r_trial);
                let trial_cost: f64 = r_trial.iter().map(|v| v * v).sum();
                if trial_cost < cost {
                    let step_norm = dx.iter().map(|v| v * v).sum::<f64>().sqrt();
                    params = trial;
                    std::mem::swap(&mut r, &mut r_trial);
                    cost = trial_cost;
                    lambda = (lambda * 0.5).max(1e-12);
                    improved = true;
                    if step_norm < self.step_tol {
                        converged = true;
                    }
                    break;
                }
                lambda *= 10.0;
            }
            // Keep jtj alive for the borrow checker's sake; it is rebuilt next
            // iteration.
            jtj[(0, 0)] += 0.0;
            if converged || !improved {
                converged = converged || !improved && cost.is_finite();
                break;
            }
        }

        FitResult {
            params,
            cost,
            iterations,
            converged,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_fit_line() {
        // Fit y = 2x + 1 through exact points.
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [1.0, 3.0, 5.0, 7.0];
        let mut a = Mat::zeros(4, 2);
        for (i, x) in xs.iter().enumerate() {
            a[(i, 0)] = *x;
            a[(i, 1)] = 1.0;
        }
        let sol = linear_lstsq(&a, &ys).unwrap();
        assert!((sol[0] - 2.0).abs() < 1e-10);
        assert!((sol[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn linear_fit_overdetermined_noisy() {
        // y = -0.5x + 4 with symmetric noise: LS recovers exact slope.
        let pts = [
            (0.0, 4.1),
            (1.0, 3.4),
            (2.0, 3.1),
            (3.0, 2.4),
            (4.0, 2.1),
            (5.0, 1.4),
        ];
        let mut a = Mat::zeros(pts.len(), 2);
        let mut b = vec![0.0; pts.len()];
        for (i, (x, y)) in pts.iter().enumerate() {
            a[(i, 0)] = *x;
            a[(i, 1)] = 1.0;
            b[i] = *y;
        }
        let sol = linear_lstsq(&a, &b).unwrap();
        assert!((sol[0] + 0.5).abs() < 0.05, "slope {}", sol[0]);
        assert!((sol[1] - 4.0).abs() < 0.12, "intercept {}", sol[1]);
    }

    struct CircleFit {
        // Points on a circle; parameters are (cx, cy, r).
        pts: Vec<(f64, f64)>,
    }

    impl Residuals for CircleFit {
        fn len(&self) -> usize {
            self.pts.len()
        }
        fn eval(&self, p: &[f64], out: &mut [f64]) {
            for (i, (x, y)) in self.pts.iter().enumerate() {
                out[i] = ((x - p[0]).powi(2) + (y - p[1]).powi(2)).sqrt() - p[2];
            }
        }
    }

    #[test]
    fn gauss_newton_circle() {
        // Points on the circle centered (1, -2) radius 3.
        let mut pts = Vec::new();
        for k in 0..12 {
            let t = 2.0 * std::f64::consts::PI * k as f64 / 12.0;
            pts.push((1.0 + 3.0 * t.cos(), -2.0 + 3.0 * t.sin()));
        }
        let fit = GaussNewton::default().minimize(&CircleFit { pts }, &[0.0, 0.0, 1.0]);
        assert!(fit.cost < 1e-12, "cost {}", fit.cost);
        assert!((fit.params[0] - 1.0).abs() < 1e-5);
        assert!((fit.params[1] + 2.0).abs() < 1e-5);
        assert!((fit.params[2] - 3.0).abs() < 1e-5);
    }

    struct Rosenbrock;
    impl Residuals for Rosenbrock {
        fn len(&self) -> usize {
            2
        }
        fn eval(&self, p: &[f64], out: &mut [f64]) {
            out[0] = 10.0 * (p[1] - p[0] * p[0]);
            out[1] = 1.0 - p[0];
        }
    }

    #[test]
    fn gauss_newton_rosenbrock() {
        let fit = GaussNewton {
            max_iters: 500,
            ..Default::default()
        }
        .minimize(&Rosenbrock, &[-1.2, 1.0]);
        assert!((fit.params[0] - 1.0).abs() < 1e-4, "{:?}", fit.params);
        assert!((fit.params[1] - 1.0).abs() < 1e-4);
    }

    #[test]
    fn gauss_newton_from_solution_stays() {
        let mut pts = Vec::new();
        for k in 0..8 {
            let t = 2.0 * std::f64::consts::PI * k as f64 / 8.0;
            pts.push((t.cos(), t.sin()));
        }
        let fit = GaussNewton::default().minimize(&CircleFit { pts }, &[0.0, 0.0, 1.0]);
        assert!(fit.cost < 1e-18);
        assert!(fit.iterations <= 3);
    }
}
