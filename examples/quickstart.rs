//! Quickstart: measure the distance between two simulated Intel 5300
//! devices with the full Chronos pipeline.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use chronos_suite::core::config::ChronosConfig;
use chronos_suite::core::session::ChronosSession;
use chronos_suite::link::time::Instant;
use chronos_suite::rf::csi::MeasurementContext;
use chronos_suite::rf::environment::Environment;
use chronos_suite::rf::geometry::Point;
use chronos_suite::rf::hardware::Intel5300;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(1);

    // Two commodity Wi-Fi devices, 4.2 m apart, free space.
    let ctx = MeasurementContext::new(
        Environment::free_space(),
        Intel5300::mobile(&mut rng), // single-antenna user device
        Point::new(0.0, 0.0),
        Intel5300::laptop(&mut rng), // 3-antenna laptop (the locator)
        Point::new(4.2, 0.0),
    );
    let mut session = ChronosSession::new(ctx, ChronosConfig::default());

    // One-time calibration against a known geometry (paper §7, obs. 2):
    // removes the constant hardware delays of both chains.
    let offset = session.calibrate(&mut rng, 2);
    println!("calibration constant: {offset:.2} ns");

    // One 35-band sweep (~84 ms of simulated time).
    let out = session.sweep(&mut rng, Instant::ZERO);
    println!(
        "sweep: {} bands measured in {:.1} ms ({} frames, {} lost)",
        out.link.bands_measured(35),
        out.link.duration().as_millis_f64(),
        out.link.frames_sent,
        out.link.frames_lost,
    );

    for (i, tof) in out.tofs.iter().enumerate() {
        match tof {
            Ok(t) => println!(
                "antenna {i}: time-of-flight {:6.2} ns -> distance {:5.2} m \
                 (2.4 GHz cross-check: {})",
                t.tof_ns,
                t.distance_m,
                if t.cross_check_ok { "ok" } else { "FLAGGED" },
            ),
            Err(e) => println!("antenna {i}: no estimate ({e})"),
        }
    }

    let d = out
        .mean_distance_m()
        .expect("at least one antenna estimated");
    println!("estimated distance: {d:.2} m (truth: 4.20 m)");

    match out.position {
        Ok(p) => println!(
            "relative position of the user device: ({:.2}, {:.2}) m, residual {:.3} m",
            p.point.x, p.point.y, p.residual_m
        ),
        Err(e) => println!("no position fix: {e}"),
    }
}
