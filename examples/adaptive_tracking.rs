//! Adaptive band-subset sweeps + online distance tracking.
//!
//! ```sh
//! cargo run --release --example adaptive_tracking
//! ```
//!
//! One access point serves four clients with the adaptive scheduler
//! enabled: every client starts in **ACQUIRE** (full 35-band sweeps)
//! until its constant-velocity tracker converges, then drops to
//! **TRACK** — 12-band low-ambiguity subset sweeps that cost about a
//! third of the airtime. One client walks away at ~1 m/s (the tracker
//! follows), and mid-run one client *teleports* across the room: its
//! innovation gate trips, the service re-ACQUIREs it with full sweeps,
//! and two fixes later it is back in TRACK at the new spot.
//!
//! Watch the `saved` column: steady-state airtime per fix drops by the
//! subset ratio, which is capacity the AP can spend on more clients
//! (see `docs/TRACKING.md` and `cargo bench -p chronos-bench --bench
//! bench_service`).
//!
//! The demo finishes with a window of **continuous** operation
//! (`run_until`, see `docs/SCHEDULING.md`): the epoch barrier is gone,
//! every TRACK client re-sweeps as soon as its subset airtime allows,
//! and the same half second of airtime yields several fixes per client.

use chronos_suite::core::config::ChronosConfig;
use chronos_suite::core::service::{RangingService, ServiceConfig};
use chronos_suite::core::tracker::{TrackMode, TrackerConfig};
use chronos_suite::link::time::Duration;
use chronos_suite::rf::csi::MeasurementContext;
use chronos_suite::rf::environment::Environment;
use chronos_suite::rf::geometry::Point;
use chronos_suite::rf::hardware::{ideal_device, AntennaArray};

fn client_ctx(d: f64) -> MeasurementContext {
    let mut ctx = MeasurementContext::new(
        Environment::free_space(),
        ideal_device(AntennaArray::single()),
        Point::new(0.0, 0.0),
        ideal_device(AntennaArray::laptop()),
        Point::new(d, 0.0),
    );
    ctx.snr.snr_at_1m_db = 55.0;
    ctx
}

fn main() {
    let mut service = RangingService::new(ServiceConfig::adaptive(TrackerConfig::default()));
    for d in [2.0, 4.0, 6.0, 8.0] {
        let id = service.add_client(client_ctx(d), ChronosConfig::ideal());
        service.client_mut(id).sweep_cfg.medium.loss_prob = 0.0;
    }

    let walker = 1; // client 1 walks away at 1 m/s (simulated time)
    let jumper = 3; // client 3 teleports at epoch 8
    let mut prev_span_s: Option<f64> = None;
    println!("epoch  mode-occupancy  airtime  saved  sweeps/s  track-rmse");
    for e in 0..14u64 {
        // Advance the walker by 1 m/s x the simulated time since the last
        // epoch start (epoch k+1 starts one airtime span + gap after
        // epoch k); its mobile endpoint backs away from the locator.
        if let Some(span_s) = prev_span_s {
            let dt_s = span_s + 0.005;
            let x = service.client(walker).ctx.initiator_pos.x - 1.0 * dt_s;
            service.client_mut(walker).ctx.initiator_pos = Point::new(x, 0.0);
        }
        if e == 8 {
            service.client_mut(jumper).ctx.initiator_pos = Point::new(5.0, 0.0);
            println!("       -- client {jumper} teleports: 8 m -> 3 m from its locator --");
        }

        let r = service.run_epoch(7000 + e);
        prev_span_s = Some(r.airtime_span.as_secs_f64());
        let occ = r.mode_occupancy();
        println!(
            "{:>5}  A:{} T:{}         {:>5.1}ms  {:>4.0}%  {:>7.1}  {:>9}",
            r.epoch,
            occ.acquire,
            occ.track,
            r.airtime_span.as_millis_f64(),
            100.0 * r.airtime_saved(),
            r.sweeps_per_sec_airtime(),
            r.track_rmse_m()
                .map(|x| format!("{x:.3} m"))
                .unwrap_or_else(|| "-".into()),
        );
        for o in &r.outcomes {
            let gate = o
                .innovation_sigmas
                .map(|s| format!("{s:.1}sigma"))
                .unwrap_or_else(|| "-".into());
            if o.client == jumper && (7..=11).contains(&e) {
                println!(
                    "         client {}: {:?} {} bands, fix {:?}, tracked {:?} (truth {:.2}), innovation {}",
                    o.client, o.mode, o.bands_planned, o.distance_m, o.tracked_m, o.truth_m, gate
                );
            }
        }
    }

    // The walker's tracker learned its radial velocity.
    let t = service.tracker(walker).expect("adaptive service");
    println!(
        "walker: tracked {:.2} m (truth {:.2} m), velocity {:+.2} m/s (truth +1.0 m/s)",
        t.filter().predicted_distance().unwrap_or(f64::NAN),
        service.client(walker).truth_distance_m(),
        t.filter().velocity().unwrap_or(f64::NAN),
    );
    let mode = service.tracker(jumper).map(|t| t.mode());
    println!("jumper: back in {mode:?} after re-acquisition");
    assert_eq!(mode, Some(TrackMode::Track));

    // Continuous mode: half a second of event-driven operation. Every
    // client is in TRACK by now, so subset sweeps pack the medium
    // back-to-back — no barrier, no idling.
    let window = service.run_until(9000, service.clock() + Duration::from_millis(500));
    println!(
        "\ncontinuous window ({}): {} sweeps ({:.1}/s, utilization {:.0}%), airtime saved {:.0}%",
        window.span(),
        window.completed(),
        window.sweeps_per_sec(),
        100.0 * window.utilization,
        100.0 * window.airtime_saved(),
    );
    for c in 0..service.n_clients() {
        let n = window.outcomes.iter().filter(|o| o.client == c).count();
        let err = service
            .tracker(c)
            .and_then(|t| t.filter().predicted_distance())
            .map(|d| (d - service.client(c).truth_distance_m()).abs());
        println!(
            "  client {c}: {n} sweeps this window, tracked error {}",
            err.map(|e| format!("{e:.3} m"))
                .unwrap_or_else(|| "-".into()),
        );
    }
    let per_client = window.completed() / service.n_clients();
    assert!(
        per_client >= 3,
        "continuous engine should fit several subset sweeps per client, got {per_client}"
    );
}
