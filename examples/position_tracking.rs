//! Online 2-D position tracking off a single multi-antenna AP (§8).
//!
//! ```sh
//! cargo run --release --example position_tracking
//! ```
//!
//! One access point with the 3-antenna 100 cm array localizes a walker
//! crossing its field of view — straight through the shadow of a
//! concrete wall. Each epoch the sweep yields a time-of-flight per
//! antenna; the distance circles are intersected (NLOS antennas rejected
//! by the triangle-inequality and residual gates) and fused by the
//! 4-state position Kalman filter. Watch the `ant` column drop to 0/3
//! behind the wall: fixes thin out or degrade there, the tracker coasts
//! on its motion prior, and the error stays bounded until the walker
//! re-emerges. See `docs/LOCALIZATION.md` for the design.

use chronos_suite::core::config::ChronosConfig;
use chronos_suite::core::service::{RangingService, ServiceConfig};
use chronos_suite::core::tracker::{TrackMode, TrackerConfig};
use chronos_suite::rf::csi::MeasurementContext;
use chronos_suite::rf::environment::{Environment, Material};
use chronos_suite::rf::geometry::{Point, Segment};
use chronos_suite::rf::hardware::{ideal_device, AntennaArray};

fn main() {
    let epochs = 14usize;
    let start = Point::new(-2.5, 3.2);
    let end = Point::new(3.5, 3.2);

    // The office: one concrete slab between the walk path and the AP.
    let mut env = Environment::free_space();
    env.add_wall(
        Segment::new(Point::new(-0.8, 1.8), Point::new(1.3, 1.8)),
        Material::Concrete,
    );

    let ap = AntennaArray::access_point();
    let mut ctx = MeasurementContext::new(
        env.clone(),
        ideal_device(AntennaArray::single()),
        start,
        ideal_device(ap.clone()),
        Point::new(0.0, 0.0),
    );
    ctx.snr.snr_at_1m_db = 36.0;

    let tracker = TrackerConfig {
        process_noise_mps2: 4.0,
        measurement_noise_m: 0.08,
        ..TrackerConfig::default()
    };
    let mut service = RangingService::new(ServiceConfig::position(tracker));
    let walker = service.add_client(ctx, ChronosConfig::ideal());
    service.client_mut(walker).sweep_cfg.medium.loss_prob = 0.0;

    let antennas = ap.world_positions(Point::new(0.0, 0.0));
    println!("epoch  mode     ant  truth            fix              tracked          err");
    for e in 0..epochs {
        let t = e as f64 / (epochs - 1) as f64;
        let truth = start.lerp(end, t);
        service.client_mut(walker).ctx.initiator_pos = truth;
        let los = env
            .los_mask(truth, &antennas)
            .iter()
            .filter(|l| **l)
            .count();

        let report = service.run_epoch(61_000 + e as u64);
        let o = &report.outcomes[0];
        let fmt = |p: Option<Point>| match p {
            Some(p) => format!("({:+5.2}, {:+5.2})", p.x, p.y),
            None => "      --      ".to_string(),
        };
        let mode = match o.mode {
            TrackMode::Acquire => "ACQUIRE",
            TrackMode::Track => "TRACK  ",
        };
        println!(
            "{e:>5}  {mode}  {los}/3  ({:+5.2}, {:+5.2})  {}  {}  {}",
            o.truth_pos.x,
            o.truth_pos.y,
            fmt(o.position),
            fmt(o.tracked_pos),
            o.tracked_pos_error_m
                .map(|err| format!("{err:.2} m"))
                .unwrap_or_else(|| "--".into()),
        );
    }
}
