//! Device-to-device localization across the 20 m x 20 m office testbed
//! (the paper's Fig. 6 environment): place two laptops at random candidate
//! spots, sweep, localize, compare with ground truth — for several
//! placements, LOS and NLOS.
//!
//! ```sh
//! cargo run --release --example office_localization
//! ```

use chronos_suite::core::config::ChronosConfig;
use chronos_suite::core::session::ChronosSession;
use chronos_suite::link::time::Instant;
use chronos_suite::rf::csi::MeasurementContext;
use chronos_suite::rf::environment::Environment;
use chronos_suite::rf::geometry::Point;
use chronos_suite::rf::hardware::Intel5300;
use chronos_suite::rf::testbed::Testbed;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(99);
    let testbed = Testbed::office(42);
    let pairs = testbed.pairs_within(12.0);

    println!(
        "office testbed: {} candidate placements within 12 m",
        pairs.len()
    );
    println!(
        "{:<10} {:>8} {:>6} {:>10} {:>10}",
        "placement", "dist(m)", "LOS", "est(m)", "locerr(m)"
    );

    // One calibrated device pair reused across placements, as in the paper.
    let ctx = MeasurementContext::new(
        Environment::free_space(),
        Intel5300::mobile(&mut rng),
        Point::new(0.0, 0.0),
        Intel5300::laptop(&mut rng),
        Point::new(2.0, 0.0),
    );
    let mut session = ChronosSession::new(ctx, ChronosConfig::default());
    session.calibrate(&mut rng, 2);
    session.ctx.environment = testbed.environment.clone();

    let mut errors = Vec::new();
    for (i, pair) in pairs.iter().step_by(pairs.len() / 8).take(8).enumerate() {
        session.ctx.initiator_pos = pair.a;
        session.ctx.responder_pos = pair.b;
        let out = session.sweep(&mut rng, Instant::from_millis(i as u64 * 100));
        let est = out.mean_distance_m();
        let loc_err = out
            .position
            .as_ref()
            .ok()
            .map(|p| p.point.dist(pair.a.sub(pair.b)));
        println!(
            "{:<10} {:>8.2} {:>6} {:>10} {:>10}",
            format!("#{i}"),
            pair.distance_m,
            if pair.los { "yes" } else { "no" },
            est.map(|d| format!("{d:.2}")).unwrap_or_else(|| "-".into()),
            loc_err
                .map(|e| format!("{e:.2}"))
                .unwrap_or_else(|| "-".into()),
        );
        if let Some(e) = loc_err {
            errors.push(e);
        }
    }
    if !errors.is_empty() {
        println!(
            "\nmedian localization error: {:.2} m over {} placements \
             (paper: 0.58 m LOS / 1.18 m NLOS at 30 cm separation)",
            chronos_suite::math::stats::median(&errors),
            errors.len()
        );
    }
}
