//! Adversarial ranging: a replay attacker versus the anomaly-scored
//! quarantine policy (see `docs/ADVERSARIAL.md`).
//!
//! ```sh
//! cargo run --release --example adversarial
//! ```
//!
//! Three clients range against one multi-antenna AP. At epoch 6 the
//! third client turns hostile: a replay attacker re-transmits the
//! ranging exchange through a delay line, inflating its time-of-flight
//! by 20 ns (~6 m). Watch the `score` column: the spoofed fix trips the
//! innovation gate, the per-client anomaly score (EWMA of normalized
//! innovations + gate-miss run) crosses the quarantine threshold within
//! a sweep, and the service withholds the attacker's estimates
//! (`tracked` goes `--`) while continuing to range it for evidence. The
//! honest clients' fixes are unaffected throughout — per-client sweeps
//! are isolated, so one compromised client cannot poison its neighbors.

use chronos_bench::adversarial::{adversarial_service, replay_attacker, Strength, ATTACKER};
use chronos_suite::rf::geometry::Point;

fn main() {
    let epochs = 14usize;
    let onset = 6usize;
    let mut service = adversarial_service(1);

    println!("three clients, attacker = client {ATTACKER}, replay onset at epoch {onset}");
    println!("epoch  client  status      score  truth            tracked          err");
    for e in 0..epochs {
        if e == onset {
            service.client_mut(ATTACKER).ctx.attacker = Some(replay_attacker(Strength::Strong));
            println!("-- epoch {e}: client {ATTACKER} starts replaying with +20 ns delay --");
        }
        let report = service.run_epoch(73_000 + e as u64);
        for o in &report.outcomes {
            let status = if o.quarantined {
                "QUARANTINE"
            } else {
                "serving   "
            };
            let pos = |p: Option<Point>| match p {
                Some(p) => format!("({:+5.2}, {:+5.2})", p.x, p.y),
                None => "      --      ".to_string(),
            };
            println!(
                "{e:>5}  {:>6}  {status}  {:>5.2}  ({:+5.2}, {:+5.2})  {}  {}",
                o.client,
                o.anomaly_score.unwrap_or(f64::NAN),
                o.truth_pos.x,
                o.truth_pos.y,
                pos(o.tracked_pos),
                o.tracked_pos_error_m
                    .map(|err| format!("{err:.2} m"))
                    .unwrap_or_else(|| "--".into()),
            );
        }
    }
}
