//! Overload at the front door: a 3x-capacity client population pushed
//! through the bounded admission queue and the load-shedding ladder
//! (see `docs/INGESTION.md`).
//!
//! ```sh
//! cargo run --release --example overload
//! ```
//!
//! Eighteen clients — twelve walking TRACK clients, three perpetual
//! ACQUIRE joiners, three BACKGROUND monitors — offer roughly three
//! times the sweep load the shared medium can serve. Watch the ladder
//! work, in order: the TRACK cadence stretches (deferrals, `stretch` >
//! 1), the BACKGROUND lane sheds, and ACQUIRE is never dropped — a
//! globally full queue displaces a background waiter instead. Queue
//! peaks stay inside the configured bounds throughout: overload costs
//! freshness, never memory, and accuracy degrades gracefully.

use chronos_bench::soak::{run_soak, soak_ingestion, SoakScenarioConfig};
use chronos_suite::link::traffic::TrafficClass;

fn main() {
    let cfg = SoakScenarioConfig::at_load(41, 3, 6, 250);
    let q = soak_ingestion().queue;
    println!(
        "{} clients at 3x capacity; queue bounds: acquire {}, track {}, background {}, global {}",
        cfg.clients(),
        q.acquire_depth,
        q.track_depth,
        q.background_depth,
        q.global_depth
    );
    println!();
    println!("window  offered  admitted  deferred  shed(bg)  shed(acq)  q-peak  stretch");

    let run = run_soak(&cfg);
    for (w, r) in run.reports.iter().enumerate() {
        let ing = &r.ingestion;
        println!(
            "{w:>6}  {:>7}  {:>8}  {:>8}  {:>8}  {:>9}  {:>6}  {:>6.2}x",
            ing.offered.total(),
            ing.admitted.total(),
            ing.deferred.total(),
            ing.shed.background,
            ing.shed.acquire,
            ing.queue_peak_total,
            ing.stretch_peak,
        );
    }

    println!();
    println!(
        "totals: {} offered, {} background shed, {} track deferrals, 0 acquire shed \
         (guaranteed by lane sizing)",
        run.offered(),
        run.shed(TrafficClass::Background),
        run.deferred_track(),
    );
    println!(
        "honest walkers: {:.2} m mean tracking error, {:.2} max/min admitted-sweep spread",
        run.honest_err_m(),
        run.fairness_ratio(),
    );
    assert_eq!(run.shed(TrafficClass::Acquire), 0);
}
