//! What a localization sweep does to foreground traffic (paper §12.3):
//! runs the hop protocol, derives the service outage it causes at an
//! access point, and pushes a buffered video stream and a TCP flow through
//! that outage.
//!
//! ```sh
//! cargo run --release --example network_coexistence
//! ```

use chronos_suite::link::sweep::{run_sweep, SweepConfig};
use chronos_suite::link::time::{Duration, Instant};
use chronos_suite::link::traffic::{Outage, TcpModel, VideoModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(3);

    // The localization request arrives at t = 6 s.
    let sweep = run_sweep(
        &SweepConfig::standard(),
        Instant::from_millis(6000),
        &mut rng,
    );
    println!(
        "sweep: {:.1} ms over 35 bands, {} frames ({} lost)",
        sweep.duration().as_millis_f64(),
        sweep.frames_sent,
        sweep.frames_lost
    );
    let outage = Outage {
        start: sweep.started,
        end: sweep.finished,
    };

    // Video: the playback buffer must absorb the outage.
    let video = VideoModel::default();
    let samples = video.run(
        Duration::from_millis(10_000),
        Duration::from_millis(50),
        &[outage],
    );
    let stalled = VideoModel::has_stall(&samples);
    let at6 = samples
        .iter()
        .find(|s| s.t >= Instant::from_millis(6_100))
        .unwrap();
    println!(
        "video @6.1s: downloaded {:.0} kb, played {:.0} kb, buffer {:.0} kb, stalls: {}",
        at6.downloaded_kb,
        at6.played_kb,
        at6.downloaded_kb - at6.played_kb,
        stalled
    );

    // TCP: expect a modest dip in the second containing the sweep.
    let tcp = TcpModel::default();
    let tput = tcp.run(
        Duration::from_millis(12_000),
        Duration::from_millis(1_000),
        &[outage],
    );
    println!("\n{:>5} {:>12}", "t(s)", "Mbit/s");
    for s in &tput {
        let marker = if (s.t.as_secs_f64() - 7.0).abs() < 0.01 {
            "  <- sweep window"
        } else {
            ""
        };
        println!(
            "{:>5.0} {:>12.3}{marker}",
            s.t.as_secs_f64(),
            s.throughput_mbps
        );
    }
    let steady = tput[3].throughput_mbps;
    let dip = tput
        .iter()
        .find(|s| (s.t.as_secs_f64() - 7.0).abs() < 0.01)
        .unwrap();
    println!(
        "\nthroughput dip: {:.1}% (paper: ~6.5%)",
        (steady - dip.throughput_mbps) / steady * 100.0
    );
}
