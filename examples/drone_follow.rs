//! The personal-drone application (paper §9, §12.4): a quadrotor holds a
//! 1.4 m distance to a walking user using Chronos ranging alone.
//!
//! ```sh
//! cargo run --release --example drone_follow
//! ```

use chronos_suite::drone::{FollowConfig, FollowSim};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(5);
    // ~15 s of flight at 84 ms per sweep.
    let cfg = FollowConfig {
        ticks: 180,
        ..Default::default()
    };

    let mut sim = FollowSim::new(&mut rng, cfg, 5);
    let records = sim.run(&mut rng);

    println!(
        "{:>6} {:>18} {:>18} {:>9} {:>9}",
        "t(s)", "user(x,y)", "drone(x,y)", "true(m)", "est(m)"
    );
    for r in records.iter().step_by(12) {
        println!(
            "{:>6.2} {:>18} {:>18} {:>9.3} {:>9}",
            r.t_s,
            format!("({:.2},{:.2})", r.user.x, r.user.y),
            format!("({:.2},{:.2})", r.drone.x, r.drone.y),
            r.true_distance_m,
            r.smoothed_distance_m
                .map(|d| format!("{d:.3}"))
                .unwrap_or_else(|| "-".into()),
        );
    }

    let dev = FollowSim::deviations(&records, 1.4, 30);
    let dev_cm: Vec<f64> = dev.iter().map(|d| d * 100.0).collect();
    println!(
        "\nsteady-state deviation from 1.4 m: median {:.1} cm, RMSE {:.1} cm \
         (paper: 4.17 cm median, 4.2 cm RMSE)",
        chronos_suite::math::stats::median(&dev_cm),
        chronos_suite::math::stats::rms(&dev_cm),
    );
}
