//! A four-AP fleet serving walkers that roam across cells (see
//! `docs/FLEET.md`).
//!
//! ```sh
//! cargo run --release --example fleet_roaming
//! ```
//!
//! The same six walkers are run twice over a 2×2 AP grid: first in
//! round-trip mode (every fix is a per-AP Chronos band sweep, handoffs
//! migrate the Kalman trackers between shards), then in TDoA mode (the
//! fleet clock-syncs over the wire and each fix is a single one-way
//! blast timestamped at every AP in range). The per-window trace shows
//! the trade the fleet layer makes: one-way fixes arrive several times
//! faster from the identical population, at comparable error — but
//! only while the sync residual stays inside the eligibility gate.

use chronos_suite::core::config::ChronosConfig;
use chronos_suite::core::fleet::{FleetConfig, FleetEngine, FleetRangingMode, FleetWindowReport};
use chronos_suite::core::tracker::TrackerConfig;
use chronos_suite::link::time::Duration;
use chronos_suite::rf::environment::Environment;
use chronos_suite::rf::geometry::Point;
use chronos_suite::rf::testbed::ap_grid;

const CLIENTS: usize = 6;
const WINDOWS: usize = 4;
const SEED: u64 = 7;

/// Walker `i`'s position after `w` windows: a deterministic drift that
/// crosses cell boundaries, identical for both fleet modes.
fn walker(i: usize, w: usize) -> Point {
    let extent = 20.0;
    let x = (2.0 + 3.1 * i as f64 + 3.4 * w as f64).rem_euclid(extent);
    let y = (4.0 + 2.3 * i as f64 + 2.1 * w as f64).rem_euclid(extent);
    Point::new(x, y)
}

fn run_mode(mode: FleetRangingMode) -> Vec<FleetWindowReport> {
    let mut cfg = FleetConfig::position(TrackerConfig::default(), mode);
    cfg.chronos = ChronosConfig {
        max_iters: 120,
        grid_step_ns: 0.5,
        ..ChronosConfig::ideal()
    };
    let mut fleet = FleetEngine::new(cfg, Environment::free_space(), ap_grid(4, 20.0));
    for i in 0..CLIENTS {
        fleet.add_client(walker(i, 0));
    }
    (0..WINDOWS)
        .map(|w| {
            for i in 0..CLIENTS {
                fleet.set_client_pos(i, walker(i, w));
            }
            fleet.run_window(SEED, Duration::from_millis(250))
        })
        .collect()
}

fn trace(label: &str, reports: &[FleetWindowReport]) -> (usize, f64) {
    println!("{label}:");
    println!("window  fixes  rate/client  median-err  handoffs  gap-sweeps  sync-rounds");
    for (w, r) in reports.iter().enumerate() {
        println!(
            "{w:>6}  {:>5}  {:>9.1}/s  {:>8.3} m  {:>8}  {:>10}  {:>11}",
            r.fixes(),
            r.fix_rate_per_client(),
            r.median_pos_error_m().unwrap_or(f64::NAN),
            r.handoffs,
            r.handoff_gap_sweeps,
            r.sync_rounds,
        );
    }
    let fixes: usize = reports.iter().map(|r| r.fixes()).sum();
    let mut errs: Vec<f64> = reports.iter().flat_map(|r| r.pos_errors_m()).collect();
    errs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = errs[errs.len() / 2];
    println!("  total: {fixes} fixes, {median:.3} m median error\n");
    (fixes, median)
}

fn main() {
    println!("{CLIENTS} walkers roaming a 2x2 AP grid (20 m cells), {WINDOWS} windows x 250 ms\n");
    let rt = run_mode(FleetRangingMode::RoundTrip);
    let td = run_mode(FleetRangingMode::Tdoa);
    let (rt_fixes, rt_med) = trace("round-trip (per-AP Chronos sweeps, tracker migration)", &rt);
    let (td_fixes, td_med) = trace("tdoa (clock-synced one-way blasts)", &td);
    println!(
        "tdoa vs round-trip: {:.1}x the fixes at {:.2}x the median error",
        td_fixes as f64 / rt_fixes as f64,
        td_med / rt_med,
    );
    let handoffs: usize = rt.iter().map(|r| r.handoffs).sum();
    assert!(handoffs >= 1, "walkers must cross a cell boundary");
    assert!(td_fixes > rt_fixes, "one-way blasts must out-rate sweeps");
}
