//! Multi-client ranging service: one access point localizing a fleet of
//! clients through the shared-plan, arbited-medium service layer.
//!
//! ```sh
//! cargo run --release --example multi_client_service
//! ```
//!
//! Eight Intel 5300 clients register with a `RangingService`. Their
//! sweeps share a single `PlanCache` (the NDFT operators, operator
//! norms, lobe tables and spline factorizations are built once, on the
//! first sweep, and reused by everyone) and contend for airtime through
//! the `MediumArbiter` (staggered starts, bounded concurrency, collision
//! loss). Estimation runs on scoped worker threads — one per core.
//! After the epoch rounds, the demo plays a window of **continuous**
//! event-driven operation (`run_until`, `docs/SCHEDULING.md`) with a
//! client leaving mid-run.

use chronos_suite::core::config::ChronosConfig;
use chronos_suite::core::service::{RangingService, ServiceConfig};
use chronos_suite::link::time::Duration;
use chronos_suite::rf::csi::MeasurementContext;
use chronos_suite::rf::environment::Environment;
use chronos_suite::rf::geometry::Point;
use chronos_suite::rf::hardware::Intel5300;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let mut service = RangingService::new(ServiceConfig::default());

    // Register eight clients scattered 2–9 m from the access point.
    let n_clients = 8;
    for i in 0..n_clients {
        let angle = i as f64 * std::f64::consts::TAU / n_clients as f64;
        let radius = 2.0 + i as f64;
        let ctx = MeasurementContext::new(
            Environment::free_space(),
            Intel5300::mobile(&mut rng),
            Point::new(radius * angle.cos(), radius * angle.sin()),
            Intel5300::laptop(&mut rng),
            Point::new(0.0, 0.0),
        );
        service.add_client(ctx, ChronosConfig::default());
    }

    // One-time per-client calibration (paper §7 obs. 2).
    service.calibrate_all(99, 2);

    // Three service rounds.
    for round in 0..3 {
        let report = service.run_epoch(1000 + round);
        println!(
            "epoch {}: {}/{} clients estimated in {:.0} ms of airtime \
             ({:.1} sweeps/s, medium {:.0}% utilized, host wall {:?})",
            report.epoch,
            report.completed(),
            report.outcomes.len(),
            report.airtime_span.as_millis_f64(),
            report.sweeps_per_sec_airtime(),
            100.0 * report.utilization,
            report.wall,
        );
        for o in &report.outcomes {
            match o.distance_m {
                Some(d) => println!(
                    "  client {}: {:5.2} m (truth {:5.2} m, err {:4.2} m) \
                     started +{:.0} ms, {} concurrent peers",
                    o.client,
                    d,
                    o.truth_m,
                    o.error_m.unwrap_or(f64::NAN),
                    o.started.saturating_since(report.started).as_millis_f64(),
                    o.concurrent,
                ),
                None => println!("  client {}: sweep incomplete, no estimate", o.client),
            }
        }
    }

    let stats = service.plans().stats();
    println!(
        "plan cache: {} NDFT plans + {} spline plans built once, \
         {:.1}% of lookups served from cache",
        stats.ndft_entries,
        stats.spline_entries,
        100.0 * stats.hit_rate(),
    );

    // Continuous operation: no epoch barrier — every client re-sweeps as
    // soon as the arbiter grants airtime, and churn is an ordinary event.
    service.remove_client(0);
    let window = service.run_until(2000, service.clock() + Duration::from_millis(300));
    println!(
        "continuous window ({}): {} sweeps from {} active clients \
         ({:.1} sweeps/s, medium {:.0}% utilized; client 0 left mid-run)",
        window.span(),
        window.completed(),
        service.n_active(),
        window.sweeps_per_sec(),
        100.0 * window.utilization,
    );
    assert!(window.outcomes.iter().all(|o| o.client != 0));
}
