//! The core idea of the paper, stripped bare: stitching measurements from
//! many narrow Wi-Fi bands resolves delay ambiguity that no single band
//! can (paper §4, Fig. 3), and the non-uniform band layout is an asset.
//!
//! ```sh
//! cargo run --release --example wideband_stitching
//! ```

use chronos_suite::core::crt::{congruence_from_channel, tof_from_channels, CrtConfig};
use chronos_suite::math::Complex64;
use chronos_suite::rf::bands::{band_plan, band_plan_24ghz};
use std::f64::consts::PI;

fn channel(f_hz: f64, tau_ns: f64) -> Complex64 {
    Complex64::from_polar(1.0, -2.0 * PI * f_hz * tau_ns * 1e-9)
}

fn main() {
    let tau = chronos_suite::math::m_to_ns(0.6); // the paper's 2 ns example
    println!("true time-of-flight: {tau:.3} ns (source at 0.6 m)\n");

    // A single band pins tau only modulo 1/f — dozens of aliases indoors.
    let f0 = 2.412e9;
    let c = congruence_from_channel(f0, channel(f0, tau), 1.0);
    println!(
        "one band @2.412 GHz: tau = {:.3} ns mod {:.3} ns -> candidates \
         0.075, 0.490, 0.905, ... every 12 cm of distance",
        c.remainder, c.modulus
    );

    // Five bands, as in Fig. 3: alignment singles out the truth.
    let five = [2.412e9, 2.462e9, 5.18e9, 5.3e9, 5.825e9];
    let hs: Vec<Complex64> = five.iter().map(|f| channel(*f, tau)).collect();
    let sol = tof_from_channels(&five, &hs, 1.0, &CrtConfig::default()).unwrap();
    println!(
        "\nfive bands (Fig. 3): resolved tau = {:.3} ns with {}/5 bands aligned",
        sol.value, sol.votes
    );

    // The full 35-band plan: unambiguous over the whole indoor range.
    let all: Vec<f64> = band_plan().iter().map(|b| b.center_hz).collect();
    for tau_far in [2.0, 67.0, 180.0] {
        let hs: Vec<Complex64> = all.iter().map(|f| channel(*f, tau_far)).collect();
        let sol = tof_from_channels(&all, &hs, 1.0, &CrtConfig::default()).unwrap();
        println!(
            "35 bands: true {tau_far:6.1} ns -> resolved {:.2} ns ({} votes, range {:.0} m)",
            sol.value,
            sol.votes,
            chronos_suite::math::ns_to_m(tau_far)
        );
    }

    // Why unequal spacing helps: the 2.4 GHz bands alone already give a
    // 200 ns unambiguous range because their moduli share few factors.
    let moduli: Vec<f64> = band_plan_24ghz()
        .iter()
        .map(|b| 1e9 / b.center_hz)
        .collect();
    let lcm = chronos_suite::math::crt::real_lcm(&moduli, 1e-4);
    println!(
        "\nLCM of the 2.4 GHz band periods: {:.0} ns (~{:.0} m unambiguous), \
         matching the paper's 200 ns / 60 m claim",
        lcm.min(1e6),
        chronos_suite::math::ns_to_m(lcm.min(1e6))
    );
}
