//! Integration tests for the multi-client ranging service and the shared
//! `PlanCache`: accuracy must survive scale-out, and the cache must be a
//! pure performance optimization (identical outputs).

use chronos_suite::core::config::ChronosConfig;
use chronos_suite::core::plan::PlanCache;
use chronos_suite::core::service::{RangingService, ServiceConfig};
use chronos_suite::core::session::ChronosSession;
use chronos_suite::core::tof::{genie_product, TofEstimator};
use chronos_suite::link::time::Instant;
use chronos_suite::rf::bands::band_plan_5ghz;
use chronos_suite::rf::csi::MeasurementContext;
use chronos_suite::rf::environment::Environment;
use chronos_suite::rf::geometry::Point;
use chronos_suite::rf::hardware::{ideal_device, AntennaArray, Intel5300};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn ideal_ctx(d: f64) -> MeasurementContext {
    let mut ctx = MeasurementContext::new(
        Environment::free_space(),
        ideal_device(AntennaArray::single()),
        Point::new(0.0, 0.0),
        ideal_device(AntennaArray::laptop()),
        Point::new(d, 0.0),
    );
    ctx.snr.snr_at_1m_db = 60.0;
    ctx
}

/// N clients served concurrently must range as accurately as the same
/// client alone in a quiet medium: contention costs airtime (staggered
/// starts, retransmissions), never accuracy.
#[test]
fn n_client_throughput_matches_single_session_accuracy() {
    // Baselines: each geometry swept by a lone, uncached session.
    let distances = [2.0, 3.5, 5.0, 6.5, 8.0];
    let mut baseline_errs = Vec::new();
    for (i, d) in distances.iter().enumerate() {
        let mut s = ChronosSession::new(ideal_ctx(*d), ChronosConfig::ideal());
        s.sweep_cfg.medium.loss_prob = 0.0;
        let mut rng = StdRng::seed_from_u64(500 + i as u64);
        let est = s
            .sweep(&mut rng, Instant::ZERO)
            .mean_distance_m()
            .expect("baseline");
        baseline_errs.push((est - d).abs());
    }

    // The same geometries as concurrent service clients.
    let mut svc = RangingService::new(ServiceConfig::default());
    for d in distances {
        let id = svc.add_client(ideal_ctx(d), ChronosConfig::ideal());
        svc.client_mut(id).sweep_cfg.medium.loss_prob = 0.0;
    }
    let report = svc.run_epoch(321);

    assert_eq!(
        report.completed(),
        distances.len(),
        "all clients must estimate"
    );
    for (o, baseline) in report.outcomes.iter().zip(baseline_errs.iter()) {
        let err = o.error_m.expect("service estimate");
        // Service error stays in the same regime as the lone-session
        // error (both are limited by the estimator, not the service).
        assert!(
            err < baseline + 0.1,
            "client {} error {err:.3} m vs baseline {baseline:.3} m",
            o.client
        );
        assert!(err < 0.15, "client {} absolute error {err:.3} m", o.client);
    }

    // Throughput accounting is sane: simulated airtime covers the epoch
    // and at least the single-sweep rate is sustained.
    assert!(
        report.sweeps_per_sec_airtime() >= 10.0,
        "{}",
        report.sweeps_per_sec_airtime()
    );
    assert!(report.utilization > 0.5);
}

/// Cached and uncached estimators must produce identical results from
/// identical inputs — the PlanCache is a cost optimization, not an
/// approximation. (Acceptance bound: 1e-9; the implementation reuses the
/// exact same arithmetic, so the difference is exactly zero.)
#[test]
fn plan_cache_estimates_are_equivalent() {
    let freqs = band_plan_5ghz();
    let paths = [(9.4, 1.0), (14.1, 0.7), (22.0, 0.4)];
    let products: Vec<_> = freqs
        .iter()
        .map(|b| genie_product(b.center_hz, &paths, 2.0))
        .collect();

    let cold = TofEstimator::new(ChronosConfig::ideal());
    let cache = Arc::new(PlanCache::new());
    let cached = TofEstimator::with_cache(ChronosConfig::ideal(), Arc::clone(&cache));

    let a = cold
        .estimate_from_products(&products)
        .expect("cold estimate");
    // Run the cached estimator twice: the second call exercises the
    // cache-hit path.
    let b1 = cached
        .estimate_from_products(&products)
        .expect("cached estimate");
    let b2 = cached
        .estimate_from_products(&products)
        .expect("cached estimate (hit)");

    for b in [&b1, &b2] {
        assert!(
            (a.tof_ns - b.tof_ns).abs() <= 1e-9,
            "tof mismatch: {} vs {}",
            a.tof_ns,
            b.tof_ns
        );
        assert!((a.distance_m - b.distance_m).abs() <= 1e-9);
        assert_eq!(a.groups.len(), b.groups.len());
        for (ga, gb) in a.groups.iter().zip(b.groups.iter()) {
            assert!((ga.raw_tof_ns - gb.raw_tof_ns).abs() <= 1e-9);
            for (ma, mb) in ga
                .profile
                .magnitudes
                .iter()
                .zip(gb.profile.magnitudes.iter())
            {
                assert!((ma - mb).abs() <= 1e-9, "profile magnitude diverged");
            }
        }
    }
    let stats = cache.stats();
    assert!(
        stats.hits >= 1,
        "second estimate must hit the cache: {stats:?}"
    );
}

/// End-to-end session equivalence: a cached session must reproduce the
/// uncached session's sweep bit-for-bit given the same RNG stream.
#[test]
fn cached_session_sweep_is_bitwise_identical() {
    let cache = Arc::new(PlanCache::new());
    let make = |cached: bool| {
        let mut rng = StdRng::seed_from_u64(4242);
        let ctx = MeasurementContext::new(
            Environment::free_space(),
            Intel5300::mobile(&mut rng),
            Point::new(0.0, 0.0),
            Intel5300::laptop(&mut rng),
            Point::new(5.5, 0.0),
        );
        if cached {
            ChronosSession::with_cache(ctx, ChronosConfig::default(), Arc::clone(&cache))
        } else {
            ChronosSession::new(ctx, ChronosConfig::default())
        }
    };
    let mut rng_a = StdRng::seed_from_u64(77);
    let mut rng_b = StdRng::seed_from_u64(77);
    let out_cold = make(false).sweep(&mut rng_a, Instant::ZERO);
    let out_cached = make(true).sweep(&mut rng_b, Instant::ZERO);

    assert_eq!(out_cold.tofs.len(), out_cached.tofs.len());
    for (a, b) in out_cold.tofs.iter().zip(out_cached.tofs.iter()) {
        match (a, b) {
            (Ok(ta), Ok(tb)) => {
                assert_eq!(ta.tof_ns.to_bits(), tb.tof_ns.to_bits());
                assert_eq!(ta.distance_m.to_bits(), tb.distance_m.to_bits());
            }
            (Err(ea), Err(eb)) => assert_eq!(format!("{ea}"), format!("{eb}")),
            other => panic!("cached/uncached disagreement: {other:?}"),
        }
    }
}

/// Continuous windows go through the same shared-plan hot path as epoch
/// rounds: accuracy per sweep stays in the lone-session regime and the
/// plan cache stays warm across windows (no plans are ever rebuilt).
#[test]
fn continuous_windows_reuse_plans_and_preserve_accuracy() {
    use chronos_suite::link::time::Duration;
    let mut svc = RangingService::new(ServiceConfig::default());
    for d in [3.0, 5.5] {
        let id = svc.add_client(ideal_ctx(d), ChronosConfig::ideal());
        svc.client_mut(id).sweep_cfg.medium.loss_prob = 0.0;
    }
    let first = svc.run_until(51, svc.clock() + Duration::from_millis(250));
    assert!(first.completed() >= 4, "only {} sweeps", first.completed());
    let second = svc.run_until(51, svc.clock() + Duration::from_millis(250));
    assert_eq!(
        second.cache.misses, first.cache.misses,
        "cache went cold across windows"
    );
    // The worker pipelines memoize the plan `Arc`s they hand out, so
    // after warm-up the shared cache is not even *consulted* per sweep —
    // hit counters may freeze entirely. What must hold: no rebuilds
    // (misses frozen above) and exactly one resident plan per
    // (bands, grid) — one NDFT plan and one spline plan here.
    assert!(second.cache.hits >= first.cache.hits);
    assert_eq!(second.cache.ndft_entries, 1);
    assert_eq!(second.cache.spline_entries, 1);
    for o in first.outcomes.iter().chain(second.outcomes.iter()) {
        let err = o.error_m.expect("estimate");
        assert!(
            err < 0.15,
            "client {} sweep {} error {err}",
            o.client,
            o.sweep
        );
    }
}

/// The service's per-epoch results are reproducible and improve in cache
/// hit rate as epochs accumulate.
#[test]
fn service_epochs_reuse_plans_across_rounds() {
    let mut svc = RangingService::new(ServiceConfig::default());
    for d in [2.5, 4.0, 6.0] {
        let id = svc.add_client(ideal_ctx(d), ChronosConfig::ideal());
        svc.client_mut(id).sweep_cfg.medium.loss_prob = 0.0;
    }
    let first = svc.run_epoch(9);
    let misses_after_first = first.cache.misses;
    let second = svc.run_epoch(10);
    // Warm cache: no new plans are ever built after round one. The
    // worker pipelines memoize plan `Arc`s, so the shared cache need not
    // be consulted again at all (hits may freeze); the reuse contract is
    // frozen misses plus a single resident plan per (bands, grid).
    assert_eq!(second.cache.misses, misses_after_first, "cache went cold");
    assert!(second.cache.hits >= first.cache.hits);
    assert_eq!(second.cache.ndft_entries, 1);
    assert_eq!(second.cache.spline_entries, 1);
    assert_eq!(second.completed(), 3);
}
