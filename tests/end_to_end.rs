//! Cross-crate integration tests: the full pipeline from physics to
//! position, exercised through the facade crate exactly the way the
//! examples use it.

use chronos_suite::core::config::{ChronosConfig, QuirkMode};
use chronos_suite::core::session::ChronosSession;
use chronos_suite::link::time::Instant;
use chronos_suite::rf::csi::MeasurementContext;
use chronos_suite::rf::environment::Environment;
use chronos_suite::rf::geometry::Point;
use chronos_suite::rf::hardware::Intel5300;
use chronos_suite::rf::testbed::Testbed;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn intel_session(seed: u64, d: f64) -> ChronosSession {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ctx = MeasurementContext::new(
        Environment::free_space(),
        Intel5300::mobile(&mut rng),
        Point::new(0.0, 0.0),
        Intel5300::laptop(&mut rng),
        Point::new(d, 0.0),
    );
    ctx.snr.snr_at_1m_db = 40.0;
    ChronosSession::new(ctx, ChronosConfig::default())
}

#[test]
fn free_space_ranging_sub_20cm_after_calibration() {
    let mut session = intel_session(100, 6.0);
    let mut rng = StdRng::seed_from_u64(200);
    session.calibrate(&mut rng, 3);
    let out = session.sweep(&mut rng, Instant::ZERO);
    let d = out.mean_distance_m().expect("estimate");
    assert!((d - 6.0).abs() < 0.2, "free-space distance {d}");
}

#[test]
fn calibration_transfers_to_new_distances() {
    // Calibrate at 2 m (the session's constructor geometry is overridden),
    // then range correctly at other distances with the same constant.
    let mut session = intel_session(101, 2.0);
    let mut rng = StdRng::seed_from_u64(201);
    session.calibrate(&mut rng, 3);
    for (i, d) in [1.0, 4.0, 9.0].iter().enumerate() {
        session.ctx.responder_pos = Point::new(*d, 0.0);
        let out = session.sweep(&mut rng, Instant::from_millis(500 * i as u64));
        let est = out.mean_distance_m().expect("estimate");
        assert!((est - d).abs() < 0.3, "at {d} m estimated {est} m");
    }
}

#[test]
fn testbed_multipath_link_stays_sub_meter() {
    let testbed = Testbed::office(42);
    let pair = testbed
        .pairs_within(10.0)
        .into_iter()
        .find(|p| p.los)
        .expect("los pair");
    let mut session = intel_session(102, 2.0);
    let mut rng = StdRng::seed_from_u64(202);
    session.calibrate(&mut rng, 2);
    session.ctx.environment = testbed.environment.clone();
    session.ctx.initiator_pos = pair.a;
    session.ctx.responder_pos = pair.b;
    let out = session.sweep(&mut rng, Instant::ZERO);
    let d = out.mean_distance_m().expect("estimate");
    assert!(
        (d - pair.distance_m).abs() < 1.0,
        "testbed distance {d} vs truth {}",
        pair.distance_m
    );
}

#[test]
fn ideal_mode_uses_all_35_bands() {
    let mut rng = StdRng::seed_from_u64(7);
    let mut ctx = MeasurementContext::new(
        Environment::free_space(),
        chronos_suite::rf::hardware::ideal_device(
            chronos_suite::rf::hardware::AntennaArray::single(),
        ),
        Point::new(0.0, 0.0),
        chronos_suite::rf::hardware::ideal_device(
            chronos_suite::rf::hardware::AntennaArray::laptop(),
        ),
        Point::new(5.0, 0.0),
    );
    ctx.snr.snr_at_1m_db = 60.0;
    let session = ChronosSession::new(ctx, ChronosConfig::ideal());
    let out = session.sweep(&mut rng, Instant::ZERO);
    let tof = out.tofs[0].as_ref().expect("estimate");
    // In ideal mode all 35 bands share one group at delay scale 2.
    assert_eq!(tof.groups.len(), 1);
    assert_eq!(tof.groups[0].n_bands, 35);
    assert_eq!(tof.groups[0].delay_scale, 2.0);
}

#[test]
fn intel_mode_splits_band_groups() {
    let mut session = intel_session(103, 3.0);
    session.config.mode = QuirkMode::Intel5300;
    let mut rng = StdRng::seed_from_u64(203);
    session.calibrate(&mut rng, 2);
    let out = session.sweep(&mut rng, Instant::ZERO);
    let tof = out.tofs[0].as_ref().expect("estimate");
    // 5 GHz primary group (24 bands, scale 2) always present; the 2.4 GHz
    // coarse group (11 bands, scale 8) joins only when its 8x-scaled
    // delays fit inside the unambiguous 200 ns profile range.
    assert!(!tof.groups.is_empty());
    assert_eq!(tof.groups[0].n_bands, 24);
    assert_eq!(tof.groups[0].delay_scale, 2.0);
    if let Some(coarse) = tof.groups.get(1) {
        assert_eq!(coarse.n_bands, 11);
        assert_eq!(coarse.delay_scale, 8.0);
    }
}

#[test]
fn localization_error_improves_with_ap_array() {
    let mut rng = StdRng::seed_from_u64(8);
    let run = |array: chronos_suite::rf::hardware::AntennaArray, rng: &mut StdRng| -> f64 {
        let mut ctx = MeasurementContext::new(
            Environment::free_space(),
            Intel5300::mobile(rng),
            Point::new(0.0, 0.0),
            Intel5300::device(rng, array),
            Point::new(2.0, 0.0),
        );
        ctx.snr.snr_at_1m_db = 40.0;
        let mut session = ChronosSession::new(ctx, ChronosConfig::default());
        session.calibrate(rng, 2);
        // Evaluate at a fresh geometry.
        session.ctx.initiator_pos = Point::new(-1.0, 4.0);
        let mut errs = Vec::new();
        for i in 0..6 {
            let out = session.sweep(rng, Instant::from_millis(100 * i));
            if let Ok(p) = out.position {
                let truth = session.ctx.initiator_pos.sub(session.ctx.responder_pos);
                errs.push(p.point.dist(truth));
            }
        }
        chronos_suite::math::stats::median(&errs)
    };
    let small = run(
        chronos_suite::rf::hardware::AntennaArray::laptop(),
        &mut rng,
    );
    let large = run(
        chronos_suite::rf::hardware::AntennaArray::access_point(),
        &mut rng,
    );
    // §10/§12.2: wider antenna separation -> better positioning. A single
    // pair of medians is noisy, so allow a little slack in the comparison;
    // the full Fig. 8b/8c experiment quantifies the gap properly.
    assert!(
        large < small + 0.15,
        "AP array should not be (meaningfully) worse: {large} vs {small}"
    );
}

#[test]
fn sweep_is_deterministic_per_seed() {
    let session = intel_session(104, 4.0);
    let out1 = session.sweep(&mut StdRng::seed_from_u64(300), Instant::ZERO);
    let out2 = session.sweep(&mut StdRng::seed_from_u64(300), Instant::ZERO);
    assert_eq!(out1.mean_distance_m(), out2.mean_distance_m());
    assert_eq!(out1.link.frames_sent, out2.link.frames_sent);
}

#[test]
fn nlos_degrades_but_does_not_break() {
    // Put a concrete wall across the direct path: error grows, estimate
    // survives (the paper's NLOS story).
    let mut session = intel_session(105, 6.0);
    let mut rng = StdRng::seed_from_u64(205);
    session.calibrate(&mut rng, 2);
    let mut env = Environment::free_space();
    env.add_wall(
        chronos_suite::rf::geometry::Segment::new(Point::new(3.0, -4.0), Point::new(3.0, 4.0)),
        chronos_suite::rf::environment::Material::Concrete,
    );
    // A couple of reflectors so NLOS has alternate paths.
    env.add_wall(
        chronos_suite::rf::geometry::Segment::new(Point::new(-2.0, 5.0), Point::new(8.0, 5.0)),
        chronos_suite::rf::environment::Material::Concrete,
    );
    session.ctx.environment = env;
    let out = session.sweep(&mut rng, Instant::ZERO);
    let d = out.mean_distance_m().expect("NLOS estimate");
    assert!((d - 6.0).abs() < 1.5, "NLOS distance {d}");
}
