//! Ablation tests for the design choices DESIGN.md §4 calls out: each test
//! verifies that a documented design decision actually earns its keep.

use chronos_suite::core::config::ChronosConfig;
use chronos_suite::core::phase::{interpolate_h0, Interpolation};
use chronos_suite::core::tof::{genie_product, TofEstimator};
use chronos_suite::rf::bands::band_plan_5ghz;
use chronos_suite::rf::csi::MeasurementContext;
use chronos_suite::rf::environment::Environment;
use chronos_suite::rf::geometry::Point;
use chronos_suite::rf::hardware::{ideal_device, AntennaArray};
use chronos_suite::rf::ofdm::SubcarrierLayout;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// DESIGN.md §4.3: cubic spline vs. linear interpolation at the
/// zero-subcarrier. With a *curved* phase profile (multipath), the spline
/// must be at least as accurate on average.
#[test]
fn ablation_spline_vs_linear_under_multipath() {
    let mut rng = StdRng::seed_from_u64(42);
    let mut env = Environment::free_space();
    env.add_room(
        0.0,
        0.0,
        12.0,
        12.0,
        chronos_suite::rf::environment::Material::Concrete,
    );
    let mut ctx = MeasurementContext::new(
        env,
        ideal_device(AntennaArray::single()),
        Point::new(2.0, 5.0),
        ideal_device(AntennaArray::single()),
        Point::new(9.0, 6.0),
    );
    ctx.snr.snr_at_1m_db = 40.0;
    let layout = SubcarrierLayout::intel5300();
    let paths = ctx.paths_between(0, 0);

    let mut err_spline = 0.0;
    let mut err_linear = 0.0;
    let mut n = 0;
    for band in band_plan_5ghz().iter().take(12) {
        let truth = paths.channel_at(band.center_hz);
        for k in 0..4 {
            let cap = ctx
                .measure_pair(&mut rng, band, &layout, 0, 0, k as f64 * 1e-3)
                .forward;
            let s = interpolate_h0(&cap, Interpolation::CubicSpline, false).unwrap();
            let l = interpolate_h0(&cap, Interpolation::Linear, false).unwrap();
            err_spline += chronos_suite::math::unwrap::angular_distance(s.arg(), truth.arg());
            err_linear += chronos_suite::math::unwrap::angular_distance(l.arg(), truth.arg());
            n += 1;
        }
    }
    let (es, el) = (err_spline / n as f64, err_linear / n as f64);
    // Honest ablation finding: at 30 subcarriers the two interpolants are
    // within a factor of ~1.5 of each other (linear can even win slightly
    // when noise dominates curvature). The paper's spline choice is
    // faithful, not performance-critical. Both must be accurate in
    // absolute terms.
    assert!(es < 0.08, "spline error {es} rad");
    assert!(el < 0.08, "linear error {el} rad");
    assert!(
        es <= el * 1.6 && el <= es * 1.6,
        "spline {es} vs linear {el}"
    );
}

/// DESIGN.md §4.1: the sparsity weight trades resolution against noise
/// rejection; at reasonable settings the estimate stays sub-ns, and an
/// absurdly large alpha degrades or kills it.
#[test]
fn ablation_alpha_sweep_on_genie_products() {
    let paths = [(12.0, 1.0), (17.0, 0.6)];
    let products: Vec<_> = band_plan_5ghz()
        .iter()
        .map(|b| genie_product(b.center_hz, &paths, 2.0))
        .collect();
    for alpha in [0.05, 0.12, 0.25] {
        let mut cfg = ChronosConfig::ideal();
        cfg.alpha_rel = alpha;
        let est = TofEstimator::new(cfg);
        let r = est.estimate_from_products(&products).unwrap();
        assert!(
            (r.tof_ns - 12.0).abs() < 0.3,
            "alpha {alpha}: tof {}",
            r.tof_ns
        );
    }
    // alpha = 0.95 zeroes nearly everything on the first step: the
    // estimate either fails outright or degrades — it must not panic.
    let mut cfg = ChronosConfig::ideal();
    cfg.alpha_rel = 0.95;
    let est = TofEstimator::new(cfg);
    let _ = est.estimate_from_products(&products);
}

/// DESIGN.md §4.4: matched-filter refinement beats raw grid quantization.
/// With a coarse 1 ns grid the estimate must still land within ~0.1 ns of
/// an off-grid truth.
#[test]
fn ablation_refinement_beats_grid_step() {
    let tau = 13.37; // deliberately off any 1 ns grid point (x2 = 26.74)
    let products: Vec<_> = band_plan_5ghz()
        .iter()
        .map(|b| genie_product(b.center_hz, &[(tau, 1.0)], 2.0))
        .collect();
    let mut cfg = ChronosConfig::ideal();
    cfg.grid_step_ns = 1.0;
    let est = TofEstimator::new(cfg);
    let r = est.estimate_from_products(&products).unwrap();
    // Grid quantization alone would allow up to 0.25 ns of ToF error
    // (half a 1 ns profile bin, descaled); refinement must do much better.
    assert!(
        (r.tof_ns - tau).abs() < 0.2,
        "refined {} vs truth {tau} at 1 ns grid",
        r.tof_ns
    );
}

/// DESIGN.md §4.5: averaging over more packet exchanges per band reduces
/// the spread of the band product's phase (paper §7 obs. 1).
#[test]
fn ablation_packets_per_band_averaging() {
    use chronos_suite::core::config::QuirkMode;
    use chronos_suite::core::reciprocity::combine_band;

    let mut ctx = MeasurementContext::new(
        Environment::free_space(),
        ideal_device(AntennaArray::single()),
        Point::new(0.0, 0.0),
        ideal_device(AntennaArray::single()),
        Point::new(5.0, 0.0),
    );
    ctx.snr.snr_at_1m_db = 25.0; // noisy on purpose
    let band = chronos_suite::rf::bands::band_by_channel(60).unwrap();
    let layout = SubcarrierLayout::intel5300();
    let truth_phase = {
        let h = ctx.paths_between(0, 0).channel_at(band.center_hz);
        (h * h).arg()
    };
    let spread = |n_exchanges: usize, seed: u64| -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut errs = Vec::new();
        for _ in 0..40 {
            let ms: Vec<_> = (0..n_exchanges)
                .map(|k| ctx.measure_pair(&mut rng, &band, &layout, 0, 0, k as f64 * 1e-3))
                .collect();
            let bp = combine_band(&ms, Interpolation::CubicSpline, QuirkMode::Ideal).unwrap();
            errs.push(chronos_suite::math::unwrap::angular_distance(
                bp.value.arg(),
                truth_phase,
            ));
        }
        chronos_suite::math::stats::mean(&errs)
    };
    let one = spread(1, 7);
    let four = spread(4, 8);
    assert!(
        four < one,
        "averaging 4 exchanges ({four}) should beat 1 ({one})"
    );
}

/// The 2.4 GHz quirk handling (DESIGN.md §4.2): an estimator in ideal mode
/// on quirk-free data and one in Intel mode on quirked data must agree.
#[test]
fn ablation_quirk_mode_consistency() {
    let tau = 9.2;
    let paths = [(tau, 1.0)];
    // Ideal: all 35 bands at scale 2.
    let ideal_products: Vec<_> = chronos_suite::rf::bands::band_plan()
        .iter()
        .map(|b| genie_product(b.center_hz, &paths, 2.0))
        .collect();
    let r_ideal = TofEstimator::new(ChronosConfig::ideal())
        .estimate_from_products(&ideal_products)
        .unwrap();
    // Intel: 5 GHz at scale 2 + 2.4 GHz at scale 8.
    let mut intel_products: Vec<_> = band_plan_5ghz()
        .iter()
        .map(|b| genie_product(b.center_hz, &paths, 2.0))
        .collect();
    for b in chronos_suite::rf::bands::band_plan_24ghz() {
        intel_products.push(genie_product(b.center_hz, &paths, 8.0));
    }
    let r_intel = TofEstimator::new(ChronosConfig::default())
        .estimate_from_products(&intel_products)
        .unwrap();
    // The two modes agree to a fraction of a nanosecond; the ideal mode
    // carries a slightly larger refinement bias from the 2.4/5 GHz fringe
    // structure of its single 35-band inversion.
    assert!(
        (r_ideal.tof_ns - r_intel.tof_ns).abs() < 0.25,
        "ideal {} vs intel {}",
        r_ideal.tof_ns,
        r_intel.tof_ns
    );
    assert!(r_intel.cross_check_ok);
}

/// Wider antenna separation helps localization (paper §10) — the geometric
/// ablation, isolated from RF noise by feeding identical range errors.
#[test]
fn ablation_antenna_separation_geometry() {
    use chronos_suite::core::localization::{locate, AntennaRange, LocalizerConfig};
    let tx = Point::new(2.0, 6.0);
    let noise = [0.06, -0.05, 0.055];
    let err_for = |array: AntennaArray| -> f64 {
        let ranges: Vec<AntennaRange> = array
            .positions()
            .iter()
            .enumerate()
            .map(|(i, a)| AntennaRange {
                antenna: *a,
                distance_m: a.dist(tx) + noise[i],
            })
            .collect();
        locate(&ranges, &LocalizerConfig::default())
            .unwrap()
            .point
            .dist(tx)
    };
    let small = err_for(AntennaArray::laptop());
    let large = err_for(AntennaArray::access_point());
    assert!(large < small, "ap {large} should beat laptop {small}");
}
