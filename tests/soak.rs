//! The overload soak tier: the bounded ingestion front-end driven at
//! 2x/3x/5x of medium capacity (see `docs/INGESTION.md` and
//! `crates/bench/src/soak.rs` for the shared scenario builders).
//!
//! Contracts pinned here:
//!
//! * **Bounded queueing**: at every load, every window's queue
//!   high-water marks respect the configured per-class and global
//!   depths — overload never grows memory or backlog without bound.
//! * **Shedding ladder**: ACQUIRE requests are never shed at any load
//!   in the matrix; BACKGROUND absorbs the drops and TRACK absorbs
//!   deferrals first, exactly as the priority ladder promises.
//! * **Accounting**: offered = admitted + deferred + shed + a residue
//!   bounded by the client count (requests still queued or dissolved
//!   at the window boundary) — no request is double-counted or lost.
//! * **Graceful degradation**: the honest walkers' tracked-distance
//!   MAE under overload stays bounded and no better than the 1x run —
//!   accuracy decays smoothly with load, it does not collapse.
//! * **Determinism**: identical seeds replay identical shedding,
//!   stretch and outcome sequences — the queue sheds as a pure
//!   function of the arrival sequence.

use chronos_bench::soak::{run_soak, soak_ingestion, SoakRun, SoakScenarioConfig};
use chronos_suite::link::traffic::TrafficClass;
use std::sync::OnceLock;

const SEED: u64 = 41;
const WINDOWS: usize = 4;
const WINDOW_MS: u64 = 250;

fn run_at(load: usize) -> SoakRun {
    run_soak(&SoakScenarioConfig::at_load(SEED, load, WINDOWS, WINDOW_MS))
}

/// The 1x near-saturation control run, shared by the per-load tests.
fn baseline() -> &'static SoakRun {
    static BASELINE: OnceLock<SoakRun> = OnceLock::new();
    BASELINE.get_or_init(|| run_at(1))
}

/// Asserts the tier's per-load contracts against the 1x control.
fn assert_overload_contracts(run: &SoakRun) {
    let load = run.cfg.load;
    let q = soak_ingestion().queue;

    // Bounded queueing, checked window by window.
    for (w, r) in run.reports.iter().enumerate() {
        let peak = &r.ingestion.queue_peak;
        assert!(
            peak.acquire <= q.acquire_depth as u64,
            "{load}x window {w}: acquire peak {} > bound {}",
            peak.acquire,
            q.acquire_depth
        );
        assert!(
            peak.track <= q.track_depth as u64,
            "{load}x window {w}: track peak {} > bound {}",
            peak.track,
            q.track_depth
        );
        assert!(
            peak.background <= q.background_depth as u64,
            "{load}x window {w}: background peak {} > bound {}",
            peak.background,
            q.background_depth
        );
        assert!(
            r.ingestion.queue_peak_total <= q.global_depth as u64,
            "{load}x window {w}: global peak {} > bound {}",
            r.ingestion.queue_peak_total,
            q.global_depth
        );
    }

    // The ladder's top rung never gives: no ACQUIRE request is shed.
    assert_eq!(
        run.shed(TrafficClass::Acquire),
        0,
        "{load}x shed ACQUIRE requests"
    );

    // Request accounting: everything offered is admitted, deferred,
    // shed, or still in flight at the end (bounded by one op/client).
    let offered = run.offered();
    let accounted: u64 = run
        .reports
        .iter()
        .map(|r| {
            r.ingestion.admitted.total() + r.ingestion.deferred.total() + r.ingestion.shed.total()
        })
        .sum();
    assert!(
        accounted <= offered,
        "{load}x accounted {accounted} > offered {offered}"
    );
    assert!(
        offered - accounted <= run.cfg.clients() as u64,
        "{load}x lost {} requests (offered {offered}, accounted {accounted})",
        offered - accounted
    );

    // Graceful degradation: bounded error, no better than the 1x run.
    let err = run.honest_err_m();
    let base_err = baseline().honest_err_m();
    assert!(
        err.is_finite() && err < 0.5,
        "{load}x honest MAE {err} not bounded"
    );
    assert!(
        err + 0.02 >= base_err,
        "{load}x honest MAE {err} beats the 1x control {base_err} — \
         overload accounting is lying somewhere"
    );
}

#[test]
fn soak_1x_control_is_clean() {
    let run = baseline();
    // Near saturation but under it: nothing shed, nothing deferred, no
    // cadence stretch beyond transparency.
    assert_eq!(run.shed(TrafficClass::Acquire), 0);
    assert_eq!(run.shed(TrafficClass::Background), 0);
    assert_eq!(run.deferred_track(), 0);
    let err = run.honest_err_m();
    assert!(err.is_finite() && err < 0.2, "1x MAE {err}");
    assert!(
        run.fairness_ratio() <= 2.0,
        "1x fairness {}",
        run.fairness_ratio()
    );
}

#[test]
fn soak_2x_overload_contracts() {
    assert_overload_contracts(&run_at(2));
}

#[test]
fn soak_3x_overload_contracts() {
    let run = run_at(3);
    assert_overload_contracts(&run);
    // 3x is the tier's shedding showcase: the ladder's lower rungs are
    // genuinely exercised (BACKGROUND drops, TRACK deferrals) while
    // ACQUIRE stays clean — shedding is happening, not just bounded.
    assert!(
        run.shed(TrafficClass::Background) > 0,
        "3x did not shed background"
    );
    assert!(run.deferred_track() > 0, "3x did not defer track");
    assert!(
        run.stretch_peak() > 1.0,
        "3x never stretched the TRACK cadence"
    );
}

#[test]
fn soak_5x_overload_contracts() {
    assert_overload_contracts(&run_at(5));
}

#[test]
fn soak_replays_bit_identically() {
    let fingerprint = |run: &SoakRun| {
        let mut fp = Vec::new();
        for r in &run.reports {
            fp.push((
                r.ingestion.offered.total(),
                r.ingestion.admitted.total(),
                r.ingestion.deferred.total(),
                r.ingestion.shed.total(),
                r.ingestion.queue_peak_total,
                r.ingestion.stretch_peak.to_bits(),
            ));
            for o in &r.outcomes {
                fp.push((
                    o.client as u64,
                    o.sweep,
                    o.deferrals as u64,
                    o.started.as_nanos(),
                    o.finished.as_nanos(),
                    o.distance_m.map(f64::to_bits).unwrap_or(0),
                ));
            }
        }
        fp
    };
    let a = run_at(3);
    let b = run_at(3);
    assert!(a.reports.iter().any(|r| r.ingestion.shed.total() > 0));
    assert_eq!(fingerprint(&a), fingerprint(&b), "3x soak replay diverged");
}
