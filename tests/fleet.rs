//! Integration tests for the multi-AP fleet layer: the TDoA path's
//! error must stay bounded against the per-AP round-trip control, the
//! sync-residual → position-error sensitivity must be monotone, fleet
//! windows must replay bit-identically across worker-thread counts,
//! handoff must conserve sweep accounting, and a `sync_disabled`
//! round-trip fleet must be bit-for-bit identical to N independent
//! single-AP engines (the sharding pin).

use chronos_suite::core::config::ChronosConfig;
use chronos_suite::core::engine::ServiceEngine;
use chronos_suite::core::fleet::{
    client_context, shard_seed, FleetConfig, FleetEngine, FleetRangingMode, FleetWindowReport,
};
use chronos_suite::core::service::ClientOutcome;
use chronos_suite::core::tracker::{TrackMode, TrackerConfig};
use chronos_suite::link::time::Duration;
use chronos_suite::rf::environment::Environment;
use chronos_suite::rf::geometry::Point;
use chronos_suite::rf::testbed::ap_grid;

fn quick_chronos() -> ChronosConfig {
    ChronosConfig {
        max_iters: 120,
        grid_step_ns: 0.5,
        ..ChronosConfig::ideal()
    }
}

fn fleet_cfg(mode: FleetRangingMode) -> FleetConfig {
    let mut cfg = FleetConfig::position(TrackerConfig::default(), mode);
    cfg.chronos = quick_chronos();
    cfg
}

/// Walker `i` after `w` windows: a deterministic diagonal drift across
/// the 3×3 grid, staggered per client so handoffs spread over windows.
fn walker(i: usize, w: usize) -> Point {
    let extent = 40.0;
    let x = (3.0 + 6.9 * i as f64 + 3.2 * w as f64).rem_euclid(extent);
    let y = (5.0 + 4.7 * i as f64 + 2.4 * w as f64).rem_euclid(extent);
    Point::new(x, y)
}

fn run_roaming(mode: FleetRangingMode, threads: usize, windows: usize) -> Vec<FleetWindowReport> {
    let mut cfg = fleet_cfg(mode);
    cfg.service.threads = threads;
    let mut fleet = FleetEngine::new(cfg, Environment::free_space(), ap_grid(9, 20.0));
    for i in 0..6 {
        fleet.add_client(walker(i, 0));
    }
    (0..windows)
        .map(|w| {
            for i in 0..6 {
                fleet.set_client_pos(i, walker(i, w));
            }
            fleet.run_window(9, Duration::from_millis(250))
        })
        .collect()
}

/// The fields that make an outcome's identity for bitwise comparison
/// (float bits, not approximate equality).
fn outcome_key(o: &ClientOutcome) -> (usize, u64, u64, u64, u64, u64, bool) {
    (
        o.client,
        o.sweep,
        o.started.as_nanos(),
        o.finished.as_nanos(),
        o.distance_m.unwrap_or(f64::NAN).to_bits(),
        o.pos_error_m.unwrap_or(f64::NAN).to_bits(),
        o.quarantined,
    )
}

#[test]
fn tdoa_error_bounded_against_round_trip_control() {
    let rt = run_roaming(FleetRangingMode::RoundTrip, 1, 2);
    let td = run_roaming(FleetRangingMode::Tdoa, 1, 2);
    let median = |reports: &[FleetWindowReport]| {
        let mut errs: Vec<f64> = reports.iter().flat_map(|r| r.pos_errors_m()).collect();
        assert!(!errs.is_empty(), "mode produced no fixes");
        errs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        errs[errs.len() / 2]
    };
    let (rt_med, td_med) = (median(&rt), median(&td));
    // The acceptance bound: one-way fixes may cost at most 1.5x the
    // round-trip error (in practice they do better — the round-trip
    // path pays cell-edge staleness the blast cadence doesn't).
    assert!(
        td_med <= 1.5 * rt_med,
        "tdoa median {td_med} m vs round-trip {rt_med} m"
    );
    // And the throughput side of the trade: strictly more fixes from
    // the same population.
    let fixes = |rs: &[FleetWindowReport]| rs.iter().map(|r| r.fixes()).sum::<usize>();
    assert!(
        fixes(&td) >= 2 * fixes(&rt),
        "tdoa {} fixes vs round-trip {}",
        fixes(&td),
        fixes(&rt)
    );
}

#[test]
fn sync_residual_to_position_error_curve_is_monotone() {
    let err_at_jitter = |jitter_ns: f64| {
        let mut cfg = fleet_cfg(FleetRangingMode::Tdoa);
        let clock = cfg.clock.as_mut().unwrap();
        clock.jitter_ns = jitter_ns;
        // Keep fixes flowing at every jitter level: this test measures
        // the error curve, not the eligibility gate.
        cfg.tdoa.residual_threshold_ns = 1e9;
        cfg.tdoa.solver.max_residual_m = 1e9;
        let mut fleet = FleetEngine::new(cfg, Environment::free_space(), ap_grid(4, 20.0));
        for i in 0..3 {
            fleet.add_client(Point::new(5.0 + 4.0 * i as f64, 7.0));
        }
        let report = fleet.run_window(5, Duration::from_millis(400));
        let mut errs = report.pos_errors_m();
        assert!(!errs.is_empty(), "no fixes at jitter {jitter_ns} ns");
        errs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        errs[errs.len() / 2]
    };
    let (tight, loose, broken) = (err_at_jitter(0.1), err_at_jitter(2.0), err_at_jitter(20.0));
    assert!(
        tight < loose && loose < broken,
        "sensitivity curve must be monotone: {tight} / {loose} / {broken}"
    );
    // And the physics scale: ~c x jitter once clock error dominates.
    assert!(broken > 1.0, "20 ns of clock residual is meters of error");
}

#[test]
fn fleet_windows_replay_bit_identically_across_thread_counts() {
    for mode in [FleetRangingMode::RoundTrip, FleetRangingMode::Tdoa] {
        let a = run_roaming(mode, 1, 2);
        let b = run_roaming(mode, 4, 2);
        assert_eq!(a.len(), b.len());
        for (ra, rb) in a.iter().zip(&b) {
            assert_eq!(ra.handoffs, rb.handoffs);
            assert_eq!(ra.handoff_gap_sweeps, rb.handoff_gap_sweeps);
            assert_eq!(ra.sync_rounds, rb.sync_rounds);
            for (sa, sb) in ra.shard_reports.iter().zip(&rb.shard_reports) {
                let ka: Vec<_> = sa.outcomes.iter().map(outcome_key).collect();
                let kb: Vec<_> = sb.outcomes.iter().map(outcome_key).collect();
                assert_eq!(ka, kb, "shard outcomes must not depend on threads");
            }
            let ta: Vec<_> = ra
                .tdoa_outcomes
                .iter()
                .map(|o| {
                    (
                        o.client,
                        o.blast,
                        o.at.as_nanos(),
                        o.pos_error_m.unwrap_or(f64::NAN).to_bits(),
                    )
                })
                .collect();
            let tb: Vec<_> = rb
                .tdoa_outcomes
                .iter()
                .map(|o| {
                    (
                        o.client,
                        o.blast,
                        o.at.as_nanos(),
                        o.pos_error_m.unwrap_or(f64::NAN).to_bits(),
                    )
                })
                .collect();
            assert_eq!(ta, tb, "tdoa outcomes must not depend on threads");
        }
    }
}

/// Everything observable about a window except execution metadata —
/// `shard_reports[..].wall` (host wall clock) and `cache.hits` (a
/// lookup count that depends on per-pipeline plan-memo warmth, hence
/// on sweep-to-worker placement) — with floats as bits. Two runs are
/// "the same" iff these strings match.
fn report_fingerprint(r: &FleetWindowReport) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    write!(
        s,
        "{}|{}|{}|{}|{}|{}",
        r.started.as_nanos(),
        r.ended.as_nanos(),
        r.handoffs,
        r.handoff_gap_sweeps,
        r.sync_rounds,
        r.n_clients
    )
    .unwrap();
    for sr in &r.shard_reports {
        write!(
            s,
            ";u={:x} misses={} plans={}/{} bp={} bf={} ing={:?}",
            sr.utilization.to_bits(),
            sr.cache.misses,
            sr.cache.ndft_entries,
            sr.cache.spline_entries,
            sr.bands_planned,
            sr.bands_full_sweep,
            sr.ingestion
        )
        .unwrap();
        for o in &sr.outcomes {
            write!(s, " {:?}", outcome_key(o)).unwrap();
        }
    }
    for o in &r.tdoa_outcomes {
        write!(
            s,
            "!{} {} {} {:x}",
            o.client,
            o.blast,
            o.at.as_nanos(),
            o.pos_error_m.unwrap_or(f64::NAN).to_bits()
        )
        .unwrap();
    }
    s
}

/// A roaming run with churn landing mid-sequence: a client joins before
/// window 1 while the walkers keep crossing cell boundaries, so the
/// windows exercise handoffs and population growth under whatever shard
/// execution strategy `workers` selects.
fn run_walkers_with_churn(
    mode: FleetRangingMode,
    workers: Option<usize>,
    windows: usize,
) -> (Vec<FleetWindowReport>, usize) {
    let mut cfg = fleet_cfg(mode);
    cfg.service.threads = 4;
    cfg.workers = workers;
    let mut fleet = FleetEngine::new(cfg, Environment::free_space(), ap_grid(9, 20.0));
    for i in 0..6 {
        fleet.add_client(walker(i, 0));
    }
    let shard_workers = fleet.shard_workers();
    let reports = (0..windows)
        .map(|w| {
            if w == 1 {
                fleet.add_client(Point::new(1.0, 39.0));
            }
            for i in 0..6 {
                fleet.set_client_pos(i, walker(i, w));
            }
            fleet.run_window(9, Duration::from_millis(250))
        })
        .collect();
    (reports, shard_workers)
}

#[test]
fn fleet_reports_bitwise_identical_across_worker_counts() {
    for mode in [FleetRangingMode::RoundTrip, FleetRangingMode::Tdoa] {
        // Some(0) pins the strictly serial shard loop (the pre-parallel
        // reference); every pool size must reproduce it bit for bit.
        let (serial, sw) = run_walkers_with_churn(mode, Some(0), 2);
        assert_eq!(sw, 0, "Some(0) must run the serial shard loop");
        assert!(
            serial.iter().map(|r| r.handoffs).sum::<usize>() >= 1,
            "scenario must exercise handoffs mid-sequence"
        );
        assert_eq!(serial.last().unwrap().n_clients, 7, "churn client joined");
        let reference: Vec<String> = serial.iter().map(report_fingerprint).collect();
        for workers in [1usize, 2, 8] {
            let (parallel, sw) = run_walkers_with_churn(mode, Some(workers), 2);
            assert_eq!(sw, workers, "explicit worker count honored");
            let got: Vec<String> = parallel.iter().map(report_fingerprint).collect();
            assert_eq!(got, reference, "workers={workers} diverged from serial");
        }
        // The default (auto) strategy must also match, whatever width
        // this host picks.
        let (auto, _) = run_walkers_with_churn(mode, None, 2);
        let got: Vec<String> = auto.iter().map(report_fingerprint).collect();
        assert_eq!(got, reference, "auto worker count diverged from serial");
    }
}

#[test]
fn handoff_conserves_sweep_accounting() {
    let mut cfg = fleet_cfg(FleetRangingMode::RoundTrip);
    cfg.service.threads = 1;
    let mut fleet = FleetEngine::new(cfg, Environment::free_space(), ap_grid(4, 20.0));
    // One walker that crosses from AP 0's cell into AP 1's.
    let c = fleet.add_client(Point::new(6.0, 5.0));
    let mut reports = Vec::new();
    for w in 0..4 {
        fleet.set_client_pos(c, Point::new(6.0 + 4.0 * w as f64, 5.0));
        reports.push(fleet.run_window(3, Duration::from_millis(250)));
    }
    let total_handoffs: usize = reports.iter().map(|r| r.handoffs).sum();
    assert_eq!(total_handoffs, 1, "walker must cross exactly one boundary");
    assert_eq!(fleet.serving_ap(c), 1);
    // Sweep conservation: within every (shard, slot) owned by the
    // client, ordinals are gapless from 0 — no sweep double-issued or
    // lost across the migration; each shard's stream restarts at 0.
    for ap in 0..4 {
        let mut expected: std::collections::HashMap<usize, u64> = Default::default();
        for r in &reports {
            for o in &r.shard_reports[ap].outcomes {
                if fleet.client_of_slot(ap, o.client) != c {
                    continue;
                }
                let next = expected.entry(o.client).or_insert(0);
                assert_eq!(o.sweep, *next, "ordinal gap at ap {ap} slot {}", o.client);
                *next += 1;
            }
        }
    }
    // Admission conservation across the boundary: the old shard admits
    // nothing after the handoff instant (an already-admitted in-flight
    // sweep may still *finish* after it, like a frame exchange
    // completing mid-handoff) and the new shard admits nothing before
    // it.
    let handoff_window = reports.iter().position(|r| r.handoffs == 1).unwrap();
    let boundary = reports[handoff_window].started;
    for o in reports.iter().flat_map(|r| &r.shard_reports[0].outcomes) {
        assert!(o.started < boundary, "old AP admitted a sweep post-handoff");
    }
    for o in reports.iter().flat_map(|r| &r.shard_reports[1].outcomes) {
        assert!(o.started >= boundary, "new AP admitted a sweep pre-handoff");
    }
    // Gap accounting is exact: the reported handoff-gap total equals a
    // recomputation from the outcome stream — every post-handoff
    // ACQUIRE sweep at the new AP until its first TRACK, nothing else.
    let mut expected_gap = 0;
    let mut awaiting = true;
    for r in &reports[handoff_window..] {
        for o in &r.shard_reports[1].outcomes {
            if !awaiting {
                break;
            }
            if o.mode == TrackMode::Track {
                awaiting = false;
            } else {
                expected_gap += 1;
            }
        }
    }
    assert_eq!(
        reports.iter().map(|r| r.handoff_gap_sweeps).sum::<usize>(),
        expected_gap,
        "handoff-gap accounting must match the outcome stream"
    );
}

#[test]
fn sync_disabled_fleet_is_bitwise_n_independent_engines() {
    // Static clients, no clock sync, round-trip mode: the fleet is
    // plain sharding and must reproduce standalone engines bit for bit
    // (including across window boundaries).
    let mut cfg = fleet_cfg(FleetRangingMode::RoundTrip);
    cfg.clock = None;
    cfg.service.threads = 1;
    let env = Environment::free_space();
    let aps = ap_grid(4, 20.0);
    let positions = [
        Point::new(4.0, 3.0),
        Point::new(24.0, 6.0),
        Point::new(2.0, 26.0),
        Point::new(23.0, 22.0),
        Point::new(7.0, 2.0),
    ];
    let seed = 11;
    let mut fleet = FleetEngine::new(cfg.clone(), env.clone(), aps.clone());
    for &p in &positions {
        fleet.add_client(p);
    }
    let w1 = fleet.run_window(seed, Duration::from_millis(300));
    let w2 = fleet.run_window(seed, Duration::from_millis(300));

    // Controls: one standalone engine per AP, clients joined in the
    // same order with the identical public context builder.
    let mut controls: Vec<ServiceEngine> = (0..aps.len())
        .map(|_| ServiceEngine::new(cfg.service.clone()))
        .collect();
    for &p in &positions {
        let ap = (0..aps.len())
            .min_by(|&a, &b| p.dist(aps[a]).partial_cmp(&p.dist(aps[b])).unwrap())
            .unwrap();
        controls[ap].join(
            client_context(&env, p, aps[ap], cfg.snr_at_1m_db),
            cfg.chronos.clone(),
        );
    }
    for (window, fleet_report) in [w1, w2].iter().enumerate() {
        let deadline = chronos_suite::link::time::Instant::ZERO
            + Duration::from_millis(300 * (window as u64 + 1));
        for (ap, control) in controls.iter_mut().enumerate() {
            let control_report = control.run_until(shard_seed(seed, ap), deadline);
            let shard = &fleet_report.shard_reports[ap];
            assert_eq!(
                shard.utilization.to_bits(),
                control_report.utilization.to_bits()
            );
            let fleet_keys: Vec<_> = shard.outcomes.iter().map(outcome_key).collect();
            let control_keys: Vec<_> = control_report.outcomes.iter().map(outcome_key).collect();
            assert_eq!(fleet_keys, control_keys, "ap {ap} window {window}");
            // Beyond the key fields: full estimate streams match bit
            // for bit.
            for (f, c) in shard.outcomes.iter().zip(&control_report.outcomes) {
                assert_eq!(
                    f.tracked_pos_error_m.unwrap_or(f64::NAN).to_bits(),
                    c.tracked_pos_error_m.unwrap_or(f64::NAN).to_bits()
                );
                assert_eq!(f.mode, c.mode);
                assert_eq!(f.bands_planned, c.bands_planned);
            }
        }
    }
}

#[test]
fn tdoa_needs_three_anchors() {
    // A 2-AP fleet can never solve a hyperbolic fix (one range
    // difference, two unknowns): blasts fire, outcomes record the
    // attempt, no fixes appear.
    let cfg = fleet_cfg(FleetRangingMode::Tdoa);
    let mut fleet = FleetEngine::new(cfg, Environment::free_space(), ap_grid(2, 20.0));
    fleet.add_client(Point::new(10.0, 0.5));
    let report = fleet.run_window(2, Duration::from_millis(300));
    assert!(!report.tdoa_outcomes.is_empty());
    assert_eq!(report.fixes(), 0);
}
