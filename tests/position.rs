//! Integration tests for online 2-D position tracking: the LOS bench
//! scenario must be sub-meter, the walled NLOS scenario must degrade
//! gracefully (bounded, reported), and the whole pipeline must be
//! deterministic epoch over epoch.

use chronos_bench::position::{
    run_position, run_position_continuous, PositionRun, PositionScenarioConfig,
};
use chronos_suite::core::config::ChronosConfig;
use chronos_suite::core::service::{LocalizationMode, RangingService, ServiceConfig};
use chronos_suite::core::tracker::{PositionTracker, TrackerConfig};
use chronos_suite::link::time::{Duration, Instant};
use chronos_suite::rf::csi::MeasurementContext;
use chronos_suite::rf::environment::Environment;
use chronos_suite::rf::geometry::Point;
use chronos_suite::rf::hardware::{ideal_device, AntennaArray};

#[test]
fn los_walker_is_submeter_median() {
    let run = run_position(&PositionScenarioConfig::los(61, 10));
    assert!(run.fix_rate() > 0.8, "fix rate {}", run.fix_rate());
    let median = run.median_err_m();
    assert!(median < 1.0, "LOS median 2-D error {median} m");
    let rmse = run.pos_rmse_m();
    assert!(rmse < 1.0, "LOS tracked RMSE {rmse} m");
}

#[test]
fn nlos_walker_degrades_gracefully() {
    let cfg = PositionScenarioConfig::nlos_wall(61, 10);
    let run = run_position(&cfg);
    // The wall must actually shadow the array mid-path...
    assert!(
        run.los_antennas.iter().any(|n| *n < 3),
        "scenario never went NLOS: {:?}",
        run.los_antennas
    );
    // ...and the degradation stays bounded and reported: the tracker
    // coasts through the shadow instead of hallucinating.
    let worst = run.worst_tracked_err_m();
    assert!(worst.is_finite(), "no tracked epochs");
    assert!(worst < 1.5, "NLOS worst tracked error {worst} m");
    assert!(
        run.median_err_m() < 1.0,
        "NLOS median {} m",
        run.median_err_m()
    );
}

#[test]
fn continuous_engine_serves_more_position_fixes_at_same_accuracy() {
    // The same LOS walk driven by run_until windows instead of epoch
    // rounds: once the tracker promotes, subset sweeps deliver several
    // fixes per ~100 ms window, and fix quality stays sub-meter.
    let cfg = PositionScenarioConfig::los(61, 8);
    let run = run_position_continuous(&cfg, Duration::from_millis(100));
    assert!(
        run.sweeps() > cfg.epochs + 4,
        "continuous run produced only {} sweeps over {} windows",
        run.sweeps(),
        cfg.epochs
    );
    let median = run.median_err_m();
    assert!(median < 1.0, "continuous LOS median 2-D error {median} m");
}

#[test]
fn position_runs_are_deterministic() {
    let cfg = PositionScenarioConfig::nlos_wall(7, 8);
    let bits = |run: &PositionRun| -> Vec<Option<(u64, u64)>> {
        run.reports
            .iter()
            .map(|r| {
                r.outcomes[0]
                    .tracked_pos
                    .map(|p| (p.x.to_bits(), p.y.to_bits()))
            })
            .collect()
    };
    let a = run_position(&cfg);
    let b = run_position(&cfg);
    assert_eq!(
        bits(&a),
        bits(&b),
        "same seed must reproduce bit-identical tracks"
    );
}

#[test]
fn position_tracker_is_deterministic_across_epochs() {
    // The tracker itself (not just the service) must be a pure function
    // of its observation stream: two trackers fed the same fixes at the
    // same instants stay bitwise identical, epoch after epoch.
    let fixes: Vec<Option<Point>> = (0..30)
        .map(|i| {
            if i % 7 == 3 {
                None // a dropped fix mid-stream
            } else {
                Some(Point::new(1.0 + 0.05 * i as f64, 4.0 - 0.03 * i as f64))
            }
        })
        .collect();
    let mut t1 = PositionTracker::new(TrackerConfig::default());
    let mut t2 = PositionTracker::new(TrackerConfig::default());
    for (i, fix) in fixes.iter().enumerate() {
        let t = Instant::ZERO + Duration::from_millis(90 * i as u64);
        let u1 = t1.observe(t, *fix, true);
        let u2 = t2.observe(t, *fix, true);
        assert_eq!(u1.next_mode, u2.next_mode);
        match (u1.fused, u2.fused) {
            (Some(a), Some(b)) => {
                assert_eq!(a.x.to_bits(), b.x.to_bits());
                assert_eq!(a.y.to_bits(), b.y.to_bits());
            }
            (a, b) => assert_eq!(a.is_some(), b.is_some()),
        }
    }
}

#[test]
fn service_position_mode_tracks_multiple_clients() {
    let mut svc = RangingService::new(ServiceConfig::position(TrackerConfig::default()));
    for p in [
        Point::new(1.5, 3.5),
        Point::new(-2.0, 4.0),
        Point::new(0.5, 5.0),
    ] {
        let mut ctx = MeasurementContext::new(
            Environment::free_space(),
            ideal_device(AntennaArray::single()),
            p,
            ideal_device(AntennaArray::access_point()),
            Point::new(0.0, 0.0),
        );
        ctx.snr.snr_at_1m_db = 55.0;
        let id = svc.add_client(ctx, ChronosConfig::ideal());
        svc.client_mut(id).sweep_cfg.medium.loss_prob = 0.0;
    }
    assert_eq!(svc.config().localization, LocalizationMode::Position);
    let mut last = None;
    for e in 0..4 {
        last = Some(svc.run_epoch(500 + e));
    }
    let report = last.unwrap();
    for o in &report.outcomes {
        let err = o.pos_error_m.expect("raw fix per client");
        assert!(err < 1.0, "client {} error {err}", o.client);
        assert!(o.tracked_pos.is_some());
        assert!(o.pos_antennas.unwrap_or(0) >= 2);
    }
    assert!(report.pos_rmse_m().unwrap() < 1.0);
    assert!(report.median_pos_error_m().unwrap() < 1.0);
}
