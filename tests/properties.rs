//! Workspace-level property-based tests (proptest) on the core invariants
//! that hold across crates.

use chronos_suite::core::crt::{tof_from_channels, CrtConfig};
use chronos_suite::core::ista::{solve, sparsify, IstaConfig};
use chronos_suite::core::localization::{locate, locate_all, AntennaRange, LocalizerConfig};
use chronos_suite::core::ndft::{Ndft, TauGrid};
use chronos_suite::core::tracker::{ClientTracker, PositionTracker, TrackMode, TrackerConfig};
use chronos_suite::link::time::{Duration, Instant};
use chronos_suite::math::crt::Congruence;
use chronos_suite::math::spline::CubicSpline;
use chronos_suite::math::stats::{median, percentile};
use chronos_suite::math::unwrap::{unwrapped, wrap_to_pi};
use chronos_suite::math::Complex64;
use chronos_suite::rf::geometry::Point;
use chronos_suite::rf::propagation::PathSet;
use proptest::prelude::*;
use std::f64::consts::PI;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Channel phase always encodes -2 pi f tau modulo 2 pi (paper Eq. 2).
    #[test]
    fn channel_phase_matches_model(
        tau_ns in 0.1f64..150.0,
        f_ghz in 2.0f64..6.0,
        amp in 0.05f64..2.0,
    ) {
        let ps = PathSet::single(tau_ns, amp);
        let h = ps.channel_at(f_ghz * 1e9);
        let expected = wrap_to_pi(-2.0 * PI * f_ghz * 1e9 * tau_ns * 1e-9);
        prop_assert!(chronos_suite::math::unwrap::angular_distance(h.arg(), expected) < 1e-6);
        prop_assert!((h.abs() - amp).abs() < 1e-9);
    }

    /// Unwrapping a wrapped smooth ramp recovers it up to an additive
    /// 2-pi-multiple anchor.
    #[test]
    fn unwrap_recovers_ramps(slope in -3.0f64..3.0, n in 4usize..80) {
        let truth: Vec<f64> = (0..n).map(|i| slope * i as f64 * 0.9).collect();
        let wrapped: Vec<f64> = truth.iter().map(|p| wrap_to_pi(*p)).collect();
        let un = unwrapped(&wrapped);
        let anchor = un[0] - truth[0];
        let k = anchor / (2.0 * PI);
        prop_assert!((k - k.round()).abs() < 1e-6);
        for (u, t) in un.iter().zip(truth.iter()) {
            prop_assert!((u - t - anchor).abs() < 1e-6);
        }
    }

    /// A natural cubic spline interpolates its knots exactly.
    #[test]
    fn spline_hits_knots(ys in proptest::collection::vec(-10.0f64..10.0, 4..20)) {
        let xs: Vec<f64> = (0..ys.len()).map(|i| i as f64).collect();
        let s = CubicSpline::fit(&xs, &ys).unwrap();
        for (x, y) in xs.iter().zip(ys.iter()) {
            prop_assert!((s.eval(*x) - y).abs() < 1e-9);
        }
    }

    /// Soft-thresholding never increases any magnitude and zeroes exactly
    /// the sub-threshold entries.
    #[test]
    fn sparsify_contracts(
        mags in proptest::collection::vec(0.0f64..2.0, 1..50),
        t in 0.0f64..1.0,
    ) {
        let mut v: Vec<Complex64> = mags
            .iter()
            .enumerate()
            .map(|(i, m)| Complex64::from_polar(*m, i as f64))
            .collect();
        let before = v.clone();
        sparsify(&mut v, t);
        for (a, b) in v.iter().zip(before.iter()) {
            prop_assert!(a.abs() <= b.abs() + 1e-12);
            if b.abs() <= t {
                prop_assert_eq!(*a, Complex64::ZERO);
            } else {
                // Phase preserved for survivors.
                prop_assert!(
                    chronos_suite::math::unwrap::angular_distance(a.arg(), b.arg()) < 1e-9
                );
            }
        }
    }

    /// The CRT voting solver recovers any single-path delay in range from
    /// noiseless phases over the 5 GHz plan.
    #[test]
    fn crt_voting_recovers_tau(tau in 0.5f64..95.0) {
        let freqs: Vec<f64> = chronos_suite::rf::bands::band_plan_5ghz()
            .iter()
            .map(|b| b.center_hz)
            .collect();
        let hs: Vec<Complex64> = freqs
            .iter()
            .map(|f| Complex64::from_polar(1.0, -2.0 * PI * f * tau * 1e-9))
            .collect();
        let sol = tof_from_channels(&freqs, &hs, 1.0, &CrtConfig::default()).unwrap();
        prop_assert!((sol.value - tau).abs() < 0.05, "tau {} -> {}", tau, sol.value);
    }

    /// A congruence's distance function is bounded by half its modulus and
    /// zero at any representative.
    #[test]
    fn congruence_distance_bounds(r in 0.0f64..5.0, m in 0.01f64..5.0, k in -5i32..5) {
        let c = Congruence::new(r, m);
        prop_assert!(c.distance(r + k as f64 * m) < 1e-9);
        for x in [0.0, 1.3, 7.7] {
            prop_assert!(c.distance(x) <= m / 2.0 + 1e-12);
        }
    }

    /// Sparse inversion of a noiseless on-grid single path puts its largest
    /// atom on the true grid point.
    #[test]
    fn ista_finds_on_grid_path(idx in 5usize..90) {
        let freqs: Vec<f64> = chronos_suite::rf::bands::band_plan_5ghz()
            .iter()
            .map(|b| b.center_hz)
            .collect();
        let grid = TauGrid::span(100.0, 1.0);
        let ndft = Ndft::new(&freqs, grid);
        let tau = grid.tau_at(idx);
        let h: Vec<Complex64> = freqs
            .iter()
            .map(|f| Complex64::from_polar(1.0, -2.0 * PI * f * tau * 1e-9))
            .collect();
        let sol = solve(&ndft, &h, &IstaConfig::default());
        let (best, _) = sol
            .p
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).unwrap())
            .unwrap();
        prop_assert_eq!(best, idx);
    }

    /// Trilateration from exact distances recovers the transmitter for any
    /// position meaningfully off the antenna plane's degenerate axis.
    #[test]
    fn trilateration_exact(x in -8.0f64..8.0, y in 0.5f64..8.0) {
        let tx = Point::new(x, y);
        let antennas = [Point::new(-0.6, 0.0), Point::new(0.6, 0.0), Point::new(0.0, 0.8)];
        let ranges: Vec<AntennaRange> = antennas
            .iter()
            .map(|a| AntennaRange { antenna: *a, distance_m: a.dist(tx) })
            .collect();
        let pos = locate(&ranges, &LocalizerConfig::default()).unwrap();
        prop_assert!(pos.point.dist(tx) < 1e-3, "err {}", pos.point.dist(tx));
    }

    /// A two-antenna fix is mirror-ambiguous; the ambiguity is resolved
    /// by a third non-collinear antenna, or by a position tracker's
    /// motion prior (paper §8's mobility heuristic).
    #[test]
    fn mirror_ambiguity_resolved(
        x in -3.0f64..3.0,
        y in 0.4f64..6.0,
        half in 0.3f64..0.8,
    ) {
        let a = Point::new(-half, 0.0);
        let b = Point::new(half, 0.0);
        let tx = Point::new(x, y);
        let mirror = Point::new(x, -y);
        let two = vec![
            AntennaRange { antenna: a, distance_m: a.dist(tx) },
            AntennaRange { antenna: b, distance_m: b.dist(tx) },
        ];
        let cfg = LocalizerConfig::default();
        let cands = locate_all(&two, &cfg).unwrap();
        prop_assert_eq!(cands.len(), 2, "two antennas must yield the mirror pair");
        for target in [tx, mirror] {
            prop_assert!(
                cands.iter().any(|c| c.point.dist(target) < 0.05),
                "missing candidate near {target:?}: {cands:?}"
            );
        }

        // Third non-collinear antenna: the best fit lands on the truth.
        let c = Point::new(0.0, 0.5);
        let mut three = two.clone();
        three.push(AntennaRange { antenna: c, distance_m: c.dist(tx) });
        let best = locate(&three, &cfg).unwrap();
        prop_assert!(best.point.dist(tx) < 0.05, "err {}", best.point.dist(tx));

        // Motion prior: a tracker warmed on the true side resolves the
        // *tied-residual* mirror pair to the prior-consistent candidate.
        let mut tracker = PositionTracker::new(TrackerConfig::default());
        for i in 0..2u64 {
            tracker.observe(
                Instant::ZERO + Duration::from_millis(100 * i),
                Some(tx),
                true,
            );
        }
        let picked = tracker.resolve(&cands).unwrap();
        prop_assert!(picked.point.dist(tx) < 0.05, "prior picked {:?}", picked.point);
    }

    /// The triangle-inequality consistency filter never rejects an
    /// antenna from a geometrically consistent LOS range set — exact
    /// distances (plus noise well under the tolerance) always use every
    /// antenna.
    #[test]
    fn triangle_filter_keeps_consistent_los_sets(
        x in -6.0f64..6.0,
        y in 0.6f64..8.0,
        n1 in -0.1f64..0.1,
        n2 in -0.1f64..0.1,
        n3 in -0.1f64..0.1,
        wide in 0usize..2,
    ) {
        let tx = Point::new(x, y);
        let antennas = if wide == 1 {
            [Point::new(-0.6, 0.0), Point::new(0.6, 0.0), Point::new(0.0, 0.8)]
        } else {
            [Point::new(-0.18, 0.0), Point::new(0.18, 0.0), Point::new(0.0, 0.24)]
        };
        let noise = [n1, n2, n3];
        let ranges: Vec<AntennaRange> = antennas
            .iter()
            .zip(noise.iter())
            .map(|(a, n)| AntennaRange { antenna: *a, distance_m: a.dist(tx) + n })
            .collect();
        // A generous residual cap isolates the triangle filter: the fit
        // itself may be loose at bad geometry, but no antenna may be
        // dropped.
        let cfg = LocalizerConfig { max_residual_m: 10.0, ..LocalizerConfig::default() };
        let pos = locate(&ranges, &cfg).unwrap();
        prop_assert_eq!(pos.n_used, 3, "consistent LOS antenna rejected");
    }

    /// Median and percentiles are order statistics: bounded by min/max and
    /// monotone in the percentile argument.
    #[test]
    fn percentile_sane(xs in proptest::collection::vec(-100.0f64..100.0, 1..60)) {
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let med = median(&xs);
        prop_assert!(med >= lo - 1e-12 && med <= hi + 1e-12);
        let mut prev = lo;
        for p in [10.0, 30.0, 50.0, 70.0, 90.0] {
            let v = percentile(&xs, p);
            prop_assert!(v + 1e-12 >= prev);
            prev = v;
        }
    }

    /// The innovation gate bounds the influence any single fix can exert
    /// on a maintained track: a sub-gate measurement moves the filtered
    /// estimate by at most `gate_sigma · √S` (the Kalman gain is ≤ 1, so
    /// the shift is at most the innovation), and an outlier above the
    /// gate never moves the estimate *silently* — it trips the gate,
    /// demotes the mode machine to ACQUIRE and grows the anomaly score,
    /// which is the guarantee the quarantine policy of
    /// `docs/ADVERSARIAL.md` is built on. Holds for arbitrary filter
    /// states (random range, velocity ramp, cadence and noise knobs).
    #[test]
    fn gate_bounds_single_fix_influence(
        d0 in 1.0f64..40.0,
        vel_step in -0.3f64..0.3,
        warmups in 2usize..10,
        dt_ms in 20u64..500,
        offset_sigmas in 0.0f64..30.0,
        sign in 0usize..2,
        gate in 2.0f64..8.0,
        noise_m in 0.02f64..0.5,
    ) {
        let cfg = TrackerConfig {
            gate_sigma: gate,
            measurement_noise_m: noise_m,
            ..TrackerConfig::default()
        };
        let mut tracker = ClientTracker::new(cfg);
        let mut t = Instant::ZERO;
        for i in 0..warmups {
            tracker.observe(t, Some(d0 + vel_step * i as f64), true);
            t += Duration::from_millis(dt_ms);
        }
        // A probe clone recovers the post-predict prediction and the
        // innovation variance S at time `t` (S is independent of the
        // measurement value), so the outlier can be *constructed* at an
        // exact sigma offset from the prediction.
        let mut probe = tracker.clone();
        let probe_upd = probe.observe(t, Some(d0), true);
        let predicted = probe_upd.predicted_m.expect("warmed-up filter has a state");
        let sigma = probe_upd.innovation.expect("probe fix has an innovation").s_m2.sqrt();
        let z = predicted + if sign == 0 { -1.0 } else { 1.0 } * offset_sigmas * sigma;

        let pre_score = tracker.anomaly_score();
        let upd = tracker.observe(t, Some(z), true);
        let fused = upd.fused_m.expect("fix always leaves a state");
        if offset_sigmas > gate + 1e-6 {
            // Outlier: explicit track break, never a silent nudge.
            prop_assert!(upd.gated, "outlier at {offset_sigmas:.2} sigmas not gated");
            prop_assert_eq!(upd.next_mode, TrackMode::Acquire);
            // The re-seed at the outlier is deliberate and flagged; the
            // anomaly score must grow by at least the run increment.
            prop_assert!((fused - z).abs() < 1e-9);
            prop_assert!(
                tracker.anomaly_score() >= pre_score + 1.0 - 1e-9,
                "gated fix must grow the anomaly score: {pre_score} -> {}",
                tracker.anomaly_score()
            );
        } else if offset_sigmas < gate - 1e-6 {
            // Sub-gate: fused, and the estimate moves by at most the
            // gate bound (and never further than the innovation itself).
            prop_assert!(!upd.gated);
            prop_assert!(
                (fused - predicted).abs() <= (z - predicted).abs() + 1e-9,
                "shift {} exceeds innovation {}",
                (fused - predicted).abs(),
                (z - predicted).abs()
            );
            prop_assert!(
                (fused - predicted).abs() <= gate * sigma + 1e-9,
                "shift {} exceeds gate bound {}",
                (fused - predicted).abs(),
                gate * sigma
            );
        }
    }

    /// Frame round trip: any encodable frame parses back to itself.
    #[test]
    fn frame_round_trip(seq in 0u16..u16::MAX, ch in 1u16..200, dwell in 0u32..10_000) {
        use chronos_suite::link::frame::Frame;
        for f in [
            Frame::HopAdvert { seq, next_channel: ch, dwell_us: dwell },
            Frame::Ack { seq },
            Frame::Measure { seq },
            Frame::Data { len: (dwell % 1500) as u16 },
        ] {
            let enc = f.encode();
            prop_assert_eq!(Frame::parse(&enc).unwrap(), f);
        }
    }
}

// ---------------------------------------------------------------------------
// Admission-queue properties (PR 7): a reference model of the bounded
// multi-class queue is replayed against the real `AdmissionQueue` over
// arbitrary offer/pop interleavings. The model is written straight from
// the documented contract (strict priority, FIFO within class, per-class
// then global bounds, ACQUIRE-displaces-newest-BACKGROUND), so any
// divergence is a bug in one of the two — and shedding being a pure
// function of the arrival sequence falls out as replay determinism.

/// One step of an interleaving: offer a request of a class, or pop.
#[derive(Debug, Clone, Copy)]
enum QueueOp {
    Offer(chronos_suite::link::traffic::TrafficClass),
    Pop,
}

fn queue_op() -> impl Strategy<Value = QueueOp> {
    use chronos_suite::link::traffic::TrafficClass;
    prop_oneof![
        Just(QueueOp::Offer(TrafficClass::Acquire)),
        Just(QueueOp::Offer(TrafficClass::Track)),
        Just(QueueOp::Offer(TrafficClass::Background)),
        Just(QueueOp::Pop),
        Just(QueueOp::Pop),
    ]
}

fn admission_cfg() -> impl Strategy<Value = chronos_suite::link::admission::AdmissionConfig> {
    (1usize..6, 1usize..6, 1usize..6, 1usize..12).prop_map(|(a, t, b, g)| {
        chronos_suite::link::admission::AdmissionConfig {
            acquire_depth: a,
            track_depth: t,
            background_depth: b,
            global_depth: g,
        }
    })
}

/// The reference model: three FIFO lanes and the documented bounds.
struct ModelQueue {
    cfg: chronos_suite::link::admission::AdmissionConfig,
    lanes: [std::collections::VecDeque<u32>; 3],
}

impl ModelQueue {
    fn new(cfg: chronos_suite::link::admission::AdmissionConfig) -> Self {
        ModelQueue {
            cfg,
            lanes: Default::default(),
        }
    }

    fn total(&self) -> usize {
        self.lanes.iter().map(|l| l.len()).sum()
    }

    fn offer(
        &mut self,
        class: chronos_suite::link::traffic::TrafficClass,
        item: u32,
    ) -> chronos_suite::link::admission::Offer<u32> {
        use chronos_suite::link::admission::Offer;
        use chronos_suite::link::traffic::TrafficClass;
        let lane = class.rank();
        if self.lanes[lane].len() >= self.cfg.depth(class) {
            return Offer::Rejected(item);
        }
        if self.total() >= self.cfg.global_depth {
            let bg = TrafficClass::Background.rank();
            if class == TrafficClass::Acquire && !self.lanes[bg].is_empty() {
                let victim = self.lanes[bg].pop_back().unwrap();
                self.lanes[lane].push_back(item);
                return Offer::Displaced(victim);
            }
            return Offer::Rejected(item);
        }
        self.lanes[lane].push_back(item);
        Offer::Enqueued
    }

    fn pop(&mut self) -> Option<(chronos_suite::link::traffic::TrafficClass, u32)> {
        use chronos_suite::link::traffic::TrafficClass;
        TrafficClass::ALL
            .into_iter()
            .find(|c| !self.lanes[c.rank()].is_empty())
            .map(|c| (c, self.lanes[c.rank()].pop_front().unwrap()))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The real queue agrees with the reference model step for step —
    /// offer outcomes (including which BACKGROUND victim a full queue
    /// displaces), pop order (strict priority, FIFO within class) and
    /// occupancy — and never exceeds a bound at any intermediate state.
    #[test]
    fn admission_queue_matches_reference_model(
        cfg in admission_cfg(),
        ops in proptest::collection::vec(queue_op(), 1..200),
    ) {
        use chronos_suite::link::admission::AdmissionQueue;
        use chronos_suite::link::traffic::TrafficClass;
        let mut real = AdmissionQueue::new(cfg);
        let mut model = ModelQueue::new(cfg);
        for (i, op) in ops.iter().enumerate() {
            match op {
                QueueOp::Offer(class) => {
                    let got = real.offer(*class, i as u32);
                    let want = model.offer(*class, i as u32);
                    prop_assert_eq!(got, want, "offer {} diverged", i);
                }
                QueueOp::Pop => {
                    prop_assert_eq!(real.pop(), model.pop(), "pop {} diverged", i);
                }
            }
            // Bounds hold at every intermediate state, not just at the end.
            for c in TrafficClass::ALL {
                prop_assert!(real.len_class(c) <= cfg.depth(c));
                prop_assert_eq!(real.len_class(c), model.lanes[c.rank()].len());
            }
            prop_assert!(real.len() <= cfg.global_depth);
            prop_assert_eq!(real.peek_class(), TrafficClass::ALL.into_iter()
                .find(|c| real.len_class(*c) > 0));
        }
        // High-water marks are consistent: each per-class mark is within
        // its bound, and the global mark is within the global bound.
        for c in TrafficClass::ALL {
            prop_assert!(real.high_water().get(c) <= cfg.depth(c) as u64);
        }
        prop_assert!(real.high_water_total() <= cfg.global_depth);
    }

    /// Replaying an interleaving yields bitwise-identical outcomes:
    /// shedding is a deterministic function of the arrival sequence.
    #[test]
    fn admission_queue_replays_deterministically(
        cfg in admission_cfg(),
        ops in proptest::collection::vec(queue_op(), 1..200),
    ) {
        use chronos_suite::link::admission::AdmissionQueue;
        let replay = || {
            let mut q = AdmissionQueue::new(cfg);
            let mut trace = Vec::new();
            for (i, op) in ops.iter().enumerate() {
                match op {
                    QueueOp::Offer(class) => {
                        trace.push(format!("{:?}", q.offer(*class, i as u32)));
                    }
                    QueueOp::Pop => trace.push(format!("{:?}", q.pop())),
                }
            }
            (trace, q.high_water(), q.high_water_total())
        };
        prop_assert_eq!(replay(), replay());
    }

    /// Strict priority across any interleaving: a pop never returns a
    /// class while a higher-priority lane has a waiter, and an ACQUIRE
    /// offer is only ever *rejected* when its own lane is at depth or
    /// the queue is globally full with nothing left to displace.
    #[test]
    fn admission_queue_priority_and_acquire_last(
        cfg in admission_cfg(),
        ops in proptest::collection::vec(queue_op(), 1..200),
    ) {
        use chronos_suite::link::admission::{AdmissionQueue, Offer};
        use chronos_suite::link::traffic::TrafficClass;
        let mut q = AdmissionQueue::new(cfg);
        for (i, op) in ops.iter().enumerate() {
            match op {
                QueueOp::Offer(class) => {
                    let before_class = q.len_class(*class);
                    let before_total = q.len();
                    let before_bg = q.len_class(TrafficClass::Background);
                    match q.offer(*class, i as u32) {
                        Offer::Rejected(item) => {
                            prop_assert_eq!(item, i as u32, "wrong item handed back");
                            let class_full = before_class >= cfg.depth(*class);
                            let global_full = before_total >= cfg.global_depth;
                            prop_assert!(class_full || global_full);
                            if *class == TrafficClass::Acquire && !class_full {
                                // ACQUIRE sheds *last*: only a globally
                                // full queue with no background left.
                                prop_assert!(global_full && before_bg == 0);
                            }
                        }
                        Offer::Displaced(_) => {
                            prop_assert_eq!(*class, TrafficClass::Acquire,
                                "only ACQUIRE may displace");
                            prop_assert!(before_total >= cfg.global_depth);
                            prop_assert!(before_bg > 0);
                        }
                        Offer::Enqueued => {
                            prop_assert!(before_class < cfg.depth(*class));
                            prop_assert!(before_total < cfg.global_depth);
                        }
                    }
                }
                QueueOp::Pop => {
                    if let Some((class, _)) = q.pop() {
                        for higher in TrafficClass::ALL {
                            if higher.outranks(class) {
                                prop_assert_eq!(q.len_class(higher), 0,
                                    "popped past a waiting higher class");
                            }
                        }
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Persistent-runtime MPMC token ring (PR 9): model-based and concurrent.
// ---------------------------------------------------------------------------

/// One step of the single-threaded ring/model comparison.
#[derive(Debug, Clone)]
enum RingOp {
    Push(u32),
    Pop,
}

fn ring_op() -> impl Strategy<Value = RingOp> {
    prop_oneof![(0u32..10_000).prop_map(RingOp::Push), Just(RingOp::Pop)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The lock-free token ring agrees with a bounded FIFO reference
    /// model (a capacity-limited `VecDeque`) over arbitrary push/pop
    /// interleavings: pushes succeed exactly when the model has room,
    /// pops return exactly the model's front, emptiness matches at
    /// every step, and a final drain yields the queued remainder in
    /// FIFO order — nothing lost, nothing duplicated.
    #[test]
    fn token_ring_matches_fifo_model(
        cap in 1usize..40,
        ops in proptest::collection::vec(ring_op(), 1..400),
    ) {
        use chronos_suite::core::runtime::TokenRing;
        use std::collections::VecDeque;
        let ring = TokenRing::with_capacity(cap);
        let cap = ring.capacity(); // rounded up to a power of two
        let mut model: VecDeque<u32> = VecDeque::new();
        for op in &ops {
            match op {
                RingOp::Push(v) => {
                    if model.len() < cap {
                        prop_assert_eq!(ring.push(*v), Ok(()), "push rejected with room");
                        model.push_back(*v);
                    } else {
                        prop_assert_eq!(ring.push(*v), Err(*v), "push accepted into a full ring");
                    }
                }
                RingOp::Pop => {
                    prop_assert_eq!(ring.pop(), model.pop_front());
                }
            }
            prop_assert_eq!(ring.is_empty(), model.is_empty());
        }
        while let Some(want) = model.pop_front() {
            prop_assert_eq!(ring.pop(), Some(want));
        }
        prop_assert_eq!(ring.pop(), None);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Real concurrent interleavings: several producer threads and
    /// several consumer threads hammer one ring. Every token must
    /// arrive at exactly one consumer (no loss, no duplication), and
    /// within each consumer's observation sequence any one producer's
    /// tokens appear in that producer's submission order (each
    /// consumer's claims are a subsequence of the global FIFO order).
    #[test]
    fn token_ring_concurrent_no_loss_no_dup(
        producers in 1usize..4,
        consumers in 1usize..3,
        per in 1usize..300,
        cap in 2usize..64,
    ) {
        use chronos_suite::core::runtime::TokenRing;
        use std::collections::HashSet;
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::{Arc, Mutex};
        let ring: Arc<TokenRing<(usize, usize)>> = Arc::new(TokenRing::with_capacity(cap));
        let done = Arc::new(AtomicBool::new(false));
        type Sink = Arc<Mutex<Vec<Vec<(usize, usize)>>>>;
        let sink: Sink = Arc::new(Mutex::new(Vec::new()));
        let consumer_handles: Vec<_> = (0..consumers)
            .map(|_| {
                let ring = Arc::clone(&ring);
                let done = Arc::clone(&done);
                let sink = Arc::clone(&sink);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    loop {
                        match ring.pop() {
                            Some(v) => got.push(v),
                            // `done` is set only after every producer
                            // joined, so one last drain observes any
                            // remainder this consumer is responsible for.
                            None if done.load(Ordering::Acquire) => {
                                while let Some(v) = ring.pop() {
                                    got.push(v);
                                }
                                break;
                            }
                            None => std::thread::yield_now(),
                        }
                    }
                    sink.lock().unwrap().push(got);
                })
            })
            .collect();
        let producer_handles: Vec<_> = (0..producers)
            .map(|p| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..per {
                        let mut v = (p, i);
                        loop {
                            match ring.push(v) {
                                Ok(()) => break,
                                Err(back) => {
                                    v = back;
                                    std::thread::yield_now();
                                }
                            }
                        }
                    }
                })
            })
            .collect();
        for h in producer_handles {
            h.join().unwrap();
        }
        done.store(true, Ordering::Release);
        for h in consumer_handles {
            h.join().unwrap();
        }
        let per_consumer = sink.lock().unwrap();
        let mut seen: HashSet<(usize, usize)> = HashSet::new();
        let mut total = 0usize;
        for got in per_consumer.iter() {
            total += got.len();
            let mut last_of: Vec<Option<usize>> = vec![None; producers];
            for (p, i) in got {
                prop_assert!(seen.insert((*p, *i)), "token ({}, {}) duplicated", p, i);
                if let Some(last) = last_of[*p] {
                    prop_assert!(
                        *i > last,
                        "producer {} reordered at consumer: {} after {}",
                        p, i, last
                    );
                }
                last_of[*p] = Some(*i);
            }
        }
        prop_assert_eq!(total, producers * per, "tokens lost");
    }
}

// ---------------------------------------------------------------------------
// Two-tier pool scheduling (PR 10): coarse shard-level driver jobs that
// submit nested fine batches onto the same shared rings. The invariant
// under test is submitter-helps: every submitter drains work while it
// waits, so any mix of driver batches, nested batches, worker counts,
// and mid-stream resizes completes (no deadlock) with exactly the
// sequential model's results in ordinal order.
// ---------------------------------------------------------------------------

/// A fine task standing in for one sweep: a pure function of its token.
struct FineModelJob(u64);

impl chronos_suite::core::runtime::PoolJob for FineModelJob {
    type Output = u64;
    fn run(&self, _p: &mut chronos_suite::core::pipeline::SweepPipeline) -> u64 {
        self.0.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17)
    }
}

/// A coarse job standing in for one shard window: folds its own base
/// with a nested fine batch it submits to the *same* pool mid-job.
struct DriverModelJob<'a> {
    rt: &'a chronos_suite::core::runtime::WorkerRuntime,
    base: u64,
    inner: Vec<u64>,
}

impl chronos_suite::core::runtime::PoolJob for DriverModelJob<'_> {
    type Output = u64;
    fn run(&self, p: &mut chronos_suite::core::pipeline::SweepPipeline) -> u64 {
        let fines: Vec<FineModelJob> = self.inner.iter().map(|v| FineModelJob(*v)).collect();
        let outs = self.rt.run_batch(&fines, p);
        outs.iter().enumerate().fold(self.base, |acc, (i, o)| {
            acc.wrapping_add(o.rotate_left((i % 61) as u32))
        })
    }
}

/// The sequential reference for one driver job.
fn driver_model(base: u64, inner: &[u64]) -> u64 {
    inner
        .iter()
        .map(|v| v.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17))
        .enumerate()
        .fold(base, |acc, (i, o)| {
            acc.wrapping_add(o.rotate_left((i % 61) as u32))
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary rounds of coarse driver batches — each job nesting its
    /// own fine batch into the shared rings — complete without deadlock
    /// on any pool width, reproduce the sequential model exactly, and
    /// survive pool resizes between rounds.
    #[test]
    fn shard_jobs_sharing_sweep_rings_never_deadlock(
        workers in 1usize..5,
        rounds in proptest::collection::vec(
            (
                proptest::collection::vec(
                    (0u64..1_000_000, proptest::collection::vec(0u64..1_000_000, 0..24)),
                    1..10,
                ),
                1usize..5, // resize target applied before the round
            ),
            1..4,
        ),
    ) {
        use chronos_suite::core::pipeline::SweepPipeline;
        use chronos_suite::core::runtime::WorkerRuntime;
        let rt = WorkerRuntime::new(workers);
        let mut pipeline = SweepPipeline::new();
        for (specs, resize_to) in &rounds {
            rt.resize(*resize_to);
            prop_assert_eq!(rt.workers(), (*resize_to).max(1));
            let jobs: Vec<DriverModelJob> = specs
                .iter()
                .map(|(base, inner)| DriverModelJob { rt: &rt, base: *base, inner: inner.clone() })
                .collect();
            let got = rt.run_driver_batch(&jobs, &mut pipeline);
            let want: Vec<u64> = specs
                .iter()
                .map(|(base, inner)| driver_model(*base, inner))
                .collect();
            prop_assert_eq!(got, want);
        }
    }
}

// ---------------------------------------------------------------------------
// Tolerance tier (PR 10): the lane-chunked conjugated-dot kernel behind
// the debias refit's normal equations (`CMat::lstsq_into_lanes`). The
// helpers are always compiled in `chronos_math`, so this pin runs in
// every tier; only `debias_into`'s dispatch is `simd`-gated.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `dot_conj_split` — the Gram/normal-equations kernel — agrees
    /// with sequential conjugated summation within 1e-12 relative on
    /// random split vectors (lengths straddling the lane width).
    #[test]
    fn debias_gram_kernel_matches_scalar_within_1e12(
        pairs in proptest::collection::vec(
            ((-2.0f64..2.0, -2.0f64..2.0), (-2.0f64..2.0, -2.0f64..2.0)),
            1..40,
        ),
    ) {
        use chronos_suite::math::lanes::dot_conj_split;
        let a: Vec<Complex64> = pairs.iter().map(|((r, i), _)| Complex64::new(*r, *i)).collect();
        let b: Vec<Complex64> = pairs.iter().map(|(_, (r, i))| Complex64::new(*r, *i)).collect();
        let (ar, ai): (Vec<f64>, Vec<f64>) = (a.iter().map(|z| z.re).collect(), a.iter().map(|z| z.im).collect());
        let (br, bi): (Vec<f64>, Vec<f64>) = (b.iter().map(|z| z.re).collect(), b.iter().map(|z| z.im).collect());
        let (re, im) = dot_conj_split(&ar, &ai, &br, &bi);
        let want = a.iter().zip(b.iter()).fold(Complex64::ZERO, |s, (x, y)| s + x.conj() * *y);
        let scale = want.abs().max(1.0);
        prop_assert!((re - want.re).abs() <= 1e-12 * scale, "{} vs {}", re, want.re);
        prop_assert!((im - want.im).abs() <= 1e-12 * scale, "{} vs {}", im, want.im);
    }

    /// The full lanes refit solve agrees with the scalar `lstsq_into`
    /// source of truth within 1e-12 relative on random well-conditioned
    /// two-atom systems.
    #[test]
    fn lstsq_lanes_matches_scalar_within_1e12(
        rows in 2usize..24,
        // Bounded apart so the two atoms stay well-conditioned: near-
        // collinear columns would amplify the kernels' ~1e-16 Gram
        // differences past the 1e-12 output bound.
        ph1 in 0.3f64..1.4,
        ph2 in -1.4f64..-0.3,
        bv in (0.2f64..2.0, -3.0f64..3.0),
    ) {
        use chronos_suite::math::cmatrix::{CLstsqScratch, CMat};
        let mut a = CMat::zeros(rows, 2);
        for i in 0..rows {
            a.set(i, 0, Complex64::cis(ph1 * i as f64));
            a.set(i, 1, Complex64::cis(ph2 * i as f64 + 0.3));
        }
        let b: Vec<Complex64> = (0..rows)
            .map(|i| Complex64::from_polar(bv.0 + 0.05 * i as f64, bv.1 + 0.2 * i as f64))
            .collect();
        let mut ws = CLstsqScratch::default();
        let (mut scalar, mut lanes) = (Vec::new(), Vec::new());
        a.lstsq_into(&b, &mut ws, &mut scalar).unwrap();
        a.lstsq_into_lanes(&b, &mut ws, &mut lanes).unwrap();
        for (s, l) in scalar.iter().zip(lanes.iter()) {
            prop_assert!((*s - *l).abs() <= 1e-12 * s.abs().max(1.0), "{} vs {}", s, l);
        }
    }
}

// ---------------------------------------------------------------------------
// Tolerance tier (PR 9): the lane-chunked SoA kernels of the `simd`
// feature against the scalar source of truth. See docs/PIPELINE.md for
// the exact-vs-tolerance contract boundary.
// ---------------------------------------------------------------------------

/// Full-sweep golden capture: end-to-end fix distances for the bench
/// population (12-band 5 GHz subset, two-path genie channels, clients at
/// `2.0 + 0.75 i` meters), recorded under the scalar (exact-tier) build.
/// Scalar builds must reproduce the capture bitwise; `simd` builds must
/// drift less than 1e-9 m. (In practice the tiers agree bitwise here:
/// the solver tiers differ within 1e-6 relative, but every discrete
/// downstream choice — support, peak bin — lands identically, and the
/// sub-grid refinement re-derives the delay from the measurements.)
#[test]
fn golden_capture_fix_distance_drift_below_nanometer() {
    use chronos_suite::core::config::ChronosConfig;
    use chronos_suite::core::tof::{genie_product, TofEstimator};
    use chronos_suite::math::constants::m_to_ns;
    use chronos_suite::rf::bands::band_plan_5ghz;
    use chronos_suite::rf::subset::select_subset;

    // Full f64 digits on purpose: the assertion below is a sub-nanometer
    // drift bound, so the recorded capture must not be pre-rounded.
    #[allow(clippy::excessive_precision)]
    const GOLDEN_DISTANCE_M: [f64; 8] = [
        2.019_885_103_586_959_39,
        2.770_128_207_207_205_32,
        3.520_355_947_751_145_46,
        4.270_218_072_061_267_91,
        5.020_445_812_605_207_61,
        5.770_664_058_245_819_74,
        6.520_866_940_810_122_97,
        7.268_889_247_605_208_05,
    ];
    let subset = select_subset(&band_plan_5ghz(), 12, 100.0);
    let estimator = TofEstimator::new(ChronosConfig::ideal());
    for (i, golden) in GOLDEN_DISTANCE_M.iter().enumerate() {
        let tau = m_to_ns(2.0 + 0.75 * i as f64);
        let paths = [(tau, 1.0), (tau + 5.0, 0.4)];
        let products: Vec<_> = subset
            .iter()
            .map(|b| genie_product(b.center_hz, &paths, 2.0))
            .collect();
        let est = estimator
            .estimate_from_products(&products)
            .expect("golden capture fix");
        let drift = (est.distance_m - golden).abs();
        assert!(
            drift < 1e-9,
            "client {i}: fix drifted {drift:.3e} m from the scalar golden capture \
             ({:.17e} vs {golden:.17e})",
            est.distance_m
        );
    }
}

#[cfg(feature = "simd")]
mod simd_tolerance {
    use super::*;
    use chronos_suite::core::ista::{solve_planned_into, solve_planned_into_scalar, IstaScratch};
    use chronos_suite::core::plan::NdftPlan;

    /// A random small NDFT problem: `n` measurement tones between 2 and
    /// 7 GHz over a grid whose size exercises both the lane-tiled main
    /// loops and their scalar tails.
    fn plan_inputs() -> impl Strategy<Value = (Vec<f64>, f64, f64)> {
        (
            proptest::collection::vec(2.0f64..7.0, 5..16),
            20.0f64..80.0, // span_ns
            0.3f64..1.5,   // step_ns
        )
            .prop_map(|(ghz, span, step)| (ghz.iter().map(|g| g * 1e9).collect(), span, step))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The split-plane forward kernel agrees with the scalar
        /// forward within 1e-12 relative on random plans and random
        /// (partially sparse) profiles.
        #[test]
        fn split_forward_matches_scalar_within_1e12(
            inputs in plan_inputs(),
            coeffs in proptest::collection::vec((-2.0f64..2.0, -2.0f64..2.0, 0u8..4), 1..8),
        ) {
            let (freqs, span, step) = inputs;
            let grid = TauGrid::span(span, step);
            let ndft = Ndft::new(&freqs, grid);
            let m = ndft.n_taus();
            let mut p = vec![Complex64::ZERO; m];
            for (j, (re, im, stride)) in coeffs.iter().enumerate() {
                let k = (j * (*stride as usize + 1) * 7) % m;
                p[k] = Complex64::new(*re, *im);
            }
            let p_re: Vec<f64> = p.iter().map(|z| z.re).collect();
            let p_im: Vec<f64> = p.iter().map(|z| z.im).collect();
            let mut want = Vec::new();
            ndft.forward_into(&p, &mut want);
            let (mut out_re, mut out_im) = (Vec::new(), Vec::new());
            ndft.forward_split_into(&p_re, &p_im, &mut out_re, &mut out_im);
            let peak = want.iter().map(|z| z.abs()).fold(1e-30f64, f64::max);
            for (w, (r, i)) in want.iter().zip(out_re.iter().zip(out_im.iter())) {
                prop_assert!((w.re - r).abs() <= 1e-12 * peak, "{} vs {}", w.re, r);
                prop_assert!((w.im - i).abs() <= 1e-12 * peak, "{} vs {}", w.im, i);
            }
        }

        /// The split-plane adjoint kernel agrees with the scalar
        /// adjoint within 1e-12 relative on random plans and random
        /// measurements.
        #[test]
        fn split_adjoint_matches_scalar_within_1e12(
            inputs in plan_inputs(),
            hv in proptest::collection::vec((-2.0f64..2.0, -2.0f64..2.0), 16..17),
        ) {
            let (freqs, span, step) = inputs;
            let grid = TauGrid::span(span, step);
            let ndft = Ndft::new(&freqs, grid);
            let n = ndft.n_freqs();
            let h: Vec<Complex64> = hv[..n].iter().map(|(r, i)| Complex64::new(*r, *i)).collect();
            let h_re: Vec<f64> = h.iter().map(|z| z.re).collect();
            let h_im: Vec<f64> = h.iter().map(|z| z.im).collect();
            let mut want = Vec::new();
            ndft.adjoint_into(&h, &mut want);
            let (mut out_re, mut out_im) = (Vec::new(), Vec::new());
            ndft.adjoint_split_into(&h_re, &h_im, &mut out_re, &mut out_im);
            let peak = want.iter().map(|z| z.abs()).fold(1e-30f64, f64::max);
            for (w, (r, i)) in want.iter().zip(out_re.iter().zip(out_im.iter())) {
                prop_assert!((w.re - r).abs() <= 1e-12 * peak, "{} vs {}", w.re, r);
                prop_assert!((w.im - i).abs() <= 1e-12 * peak, "{} vs {}", w.im, i);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Whole-solver agreement: the lane-chunked FISTA body (fused
        /// prox kernel, support-restricted forward, on-the-fly momentum)
        /// tracks the scalar reference solver within 1e-6 relative on
        /// random two-path channels — per-kernel 1e-12 drift compounded
        /// over hundreds of iterations stays bounded.
        #[test]
        fn simd_solver_tracks_scalar_on_random_channels(
            tau in 5.0f64..60.0,
            sep in 2.0f64..20.0,
            amp2 in 0.05f64..0.9,
        ) {
            let freqs: Vec<f64> = (0..12).map(|i| 5.18e9 + 20e6 * i as f64).collect();
            let grid = TauGrid::span(100.0, 0.5);
            let plan = NdftPlan::new(&freqs, grid, 100.0);
            let h: Vec<Complex64> = freqs
                .iter()
                .map(|f| {
                    let ph1 = -2.0 * PI * f * tau * 1e-9;
                    let ph2 = -2.0 * PI * f * (tau + sep) * 1e-9;
                    Complex64::cis(ph1) + Complex64::cis(ph2) * amp2
                })
                .collect();
            let cfg = IstaConfig::default();
            let mut scalar = IstaScratch::new();
            solve_planned_into_scalar(&plan, &h, &cfg, &mut scalar);
            let mut simd = IstaScratch::new();
            solve_planned_into(&plan, &h, &cfg, &mut simd);
            let peak = scalar
                .solution()
                .iter()
                .map(|z| z.abs())
                .fold(1e-30f64, f64::max);
            for (a, b) in scalar.solution().iter().zip(simd.solution().iter()) {
                prop_assert!(
                    (*a - *b).abs() <= 1e-6 * peak,
                    "solver tiers diverged: {} vs {}",
                    a, b
                );
            }
        }
    }
}
