//! Workspace-level property-based tests (proptest) on the core invariants
//! that hold across crates.

use chronos_suite::core::crt::{tof_from_channels, CrtConfig};
use chronos_suite::core::ista::{solve, sparsify, IstaConfig};
use chronos_suite::core::localization::{locate, locate_all, AntennaRange, LocalizerConfig};
use chronos_suite::core::ndft::{Ndft, TauGrid};
use chronos_suite::core::tracker::{ClientTracker, PositionTracker, TrackMode, TrackerConfig};
use chronos_suite::link::time::{Duration, Instant};
use chronos_suite::math::crt::Congruence;
use chronos_suite::math::spline::CubicSpline;
use chronos_suite::math::stats::{median, percentile};
use chronos_suite::math::unwrap::{unwrapped, wrap_to_pi};
use chronos_suite::math::Complex64;
use chronos_suite::rf::geometry::Point;
use chronos_suite::rf::propagation::PathSet;
use proptest::prelude::*;
use std::f64::consts::PI;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Channel phase always encodes -2 pi f tau modulo 2 pi (paper Eq. 2).
    #[test]
    fn channel_phase_matches_model(
        tau_ns in 0.1f64..150.0,
        f_ghz in 2.0f64..6.0,
        amp in 0.05f64..2.0,
    ) {
        let ps = PathSet::single(tau_ns, amp);
        let h = ps.channel_at(f_ghz * 1e9);
        let expected = wrap_to_pi(-2.0 * PI * f_ghz * 1e9 * tau_ns * 1e-9);
        prop_assert!(chronos_suite::math::unwrap::angular_distance(h.arg(), expected) < 1e-6);
        prop_assert!((h.abs() - amp).abs() < 1e-9);
    }

    /// Unwrapping a wrapped smooth ramp recovers it up to an additive
    /// 2-pi-multiple anchor.
    #[test]
    fn unwrap_recovers_ramps(slope in -3.0f64..3.0, n in 4usize..80) {
        let truth: Vec<f64> = (0..n).map(|i| slope * i as f64 * 0.9).collect();
        let wrapped: Vec<f64> = truth.iter().map(|p| wrap_to_pi(*p)).collect();
        let un = unwrapped(&wrapped);
        let anchor = un[0] - truth[0];
        let k = anchor / (2.0 * PI);
        prop_assert!((k - k.round()).abs() < 1e-6);
        for (u, t) in un.iter().zip(truth.iter()) {
            prop_assert!((u - t - anchor).abs() < 1e-6);
        }
    }

    /// A natural cubic spline interpolates its knots exactly.
    #[test]
    fn spline_hits_knots(ys in proptest::collection::vec(-10.0f64..10.0, 4..20)) {
        let xs: Vec<f64> = (0..ys.len()).map(|i| i as f64).collect();
        let s = CubicSpline::fit(&xs, &ys).unwrap();
        for (x, y) in xs.iter().zip(ys.iter()) {
            prop_assert!((s.eval(*x) - y).abs() < 1e-9);
        }
    }

    /// Soft-thresholding never increases any magnitude and zeroes exactly
    /// the sub-threshold entries.
    #[test]
    fn sparsify_contracts(
        mags in proptest::collection::vec(0.0f64..2.0, 1..50),
        t in 0.0f64..1.0,
    ) {
        let mut v: Vec<Complex64> = mags
            .iter()
            .enumerate()
            .map(|(i, m)| Complex64::from_polar(*m, i as f64))
            .collect();
        let before = v.clone();
        sparsify(&mut v, t);
        for (a, b) in v.iter().zip(before.iter()) {
            prop_assert!(a.abs() <= b.abs() + 1e-12);
            if b.abs() <= t {
                prop_assert_eq!(*a, Complex64::ZERO);
            } else {
                // Phase preserved for survivors.
                prop_assert!(
                    chronos_suite::math::unwrap::angular_distance(a.arg(), b.arg()) < 1e-9
                );
            }
        }
    }

    /// The CRT voting solver recovers any single-path delay in range from
    /// noiseless phases over the 5 GHz plan.
    #[test]
    fn crt_voting_recovers_tau(tau in 0.5f64..95.0) {
        let freqs: Vec<f64> = chronos_suite::rf::bands::band_plan_5ghz()
            .iter()
            .map(|b| b.center_hz)
            .collect();
        let hs: Vec<Complex64> = freqs
            .iter()
            .map(|f| Complex64::from_polar(1.0, -2.0 * PI * f * tau * 1e-9))
            .collect();
        let sol = tof_from_channels(&freqs, &hs, 1.0, &CrtConfig::default()).unwrap();
        prop_assert!((sol.value - tau).abs() < 0.05, "tau {} -> {}", tau, sol.value);
    }

    /// A congruence's distance function is bounded by half its modulus and
    /// zero at any representative.
    #[test]
    fn congruence_distance_bounds(r in 0.0f64..5.0, m in 0.01f64..5.0, k in -5i32..5) {
        let c = Congruence::new(r, m);
        prop_assert!(c.distance(r + k as f64 * m) < 1e-9);
        for x in [0.0, 1.3, 7.7] {
            prop_assert!(c.distance(x) <= m / 2.0 + 1e-12);
        }
    }

    /// Sparse inversion of a noiseless on-grid single path puts its largest
    /// atom on the true grid point.
    #[test]
    fn ista_finds_on_grid_path(idx in 5usize..90) {
        let freqs: Vec<f64> = chronos_suite::rf::bands::band_plan_5ghz()
            .iter()
            .map(|b| b.center_hz)
            .collect();
        let grid = TauGrid::span(100.0, 1.0);
        let ndft = Ndft::new(&freqs, grid);
        let tau = grid.tau_at(idx);
        let h: Vec<Complex64> = freqs
            .iter()
            .map(|f| Complex64::from_polar(1.0, -2.0 * PI * f * tau * 1e-9))
            .collect();
        let sol = solve(&ndft, &h, &IstaConfig::default());
        let (best, _) = sol
            .p
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).unwrap())
            .unwrap();
        prop_assert_eq!(best, idx);
    }

    /// Trilateration from exact distances recovers the transmitter for any
    /// position meaningfully off the antenna plane's degenerate axis.
    #[test]
    fn trilateration_exact(x in -8.0f64..8.0, y in 0.5f64..8.0) {
        let tx = Point::new(x, y);
        let antennas = [Point::new(-0.6, 0.0), Point::new(0.6, 0.0), Point::new(0.0, 0.8)];
        let ranges: Vec<AntennaRange> = antennas
            .iter()
            .map(|a| AntennaRange { antenna: *a, distance_m: a.dist(tx) })
            .collect();
        let pos = locate(&ranges, &LocalizerConfig::default()).unwrap();
        prop_assert!(pos.point.dist(tx) < 1e-3, "err {}", pos.point.dist(tx));
    }

    /// A two-antenna fix is mirror-ambiguous; the ambiguity is resolved
    /// by a third non-collinear antenna, or by a position tracker's
    /// motion prior (paper §8's mobility heuristic).
    #[test]
    fn mirror_ambiguity_resolved(
        x in -3.0f64..3.0,
        y in 0.4f64..6.0,
        half in 0.3f64..0.8,
    ) {
        let a = Point::new(-half, 0.0);
        let b = Point::new(half, 0.0);
        let tx = Point::new(x, y);
        let mirror = Point::new(x, -y);
        let two = vec![
            AntennaRange { antenna: a, distance_m: a.dist(tx) },
            AntennaRange { antenna: b, distance_m: b.dist(tx) },
        ];
        let cfg = LocalizerConfig::default();
        let cands = locate_all(&two, &cfg).unwrap();
        prop_assert_eq!(cands.len(), 2, "two antennas must yield the mirror pair");
        for target in [tx, mirror] {
            prop_assert!(
                cands.iter().any(|c| c.point.dist(target) < 0.05),
                "missing candidate near {target:?}: {cands:?}"
            );
        }

        // Third non-collinear antenna: the best fit lands on the truth.
        let c = Point::new(0.0, 0.5);
        let mut three = two.clone();
        three.push(AntennaRange { antenna: c, distance_m: c.dist(tx) });
        let best = locate(&three, &cfg).unwrap();
        prop_assert!(best.point.dist(tx) < 0.05, "err {}", best.point.dist(tx));

        // Motion prior: a tracker warmed on the true side resolves the
        // *tied-residual* mirror pair to the prior-consistent candidate.
        let mut tracker = PositionTracker::new(TrackerConfig::default());
        for i in 0..2u64 {
            tracker.observe(
                Instant::ZERO + Duration::from_millis(100 * i),
                Some(tx),
                true,
            );
        }
        let picked = tracker.resolve(&cands).unwrap();
        prop_assert!(picked.point.dist(tx) < 0.05, "prior picked {:?}", picked.point);
    }

    /// The triangle-inequality consistency filter never rejects an
    /// antenna from a geometrically consistent LOS range set — exact
    /// distances (plus noise well under the tolerance) always use every
    /// antenna.
    #[test]
    fn triangle_filter_keeps_consistent_los_sets(
        x in -6.0f64..6.0,
        y in 0.6f64..8.0,
        n1 in -0.1f64..0.1,
        n2 in -0.1f64..0.1,
        n3 in -0.1f64..0.1,
        wide in 0usize..2,
    ) {
        let tx = Point::new(x, y);
        let antennas = if wide == 1 {
            [Point::new(-0.6, 0.0), Point::new(0.6, 0.0), Point::new(0.0, 0.8)]
        } else {
            [Point::new(-0.18, 0.0), Point::new(0.18, 0.0), Point::new(0.0, 0.24)]
        };
        let noise = [n1, n2, n3];
        let ranges: Vec<AntennaRange> = antennas
            .iter()
            .zip(noise.iter())
            .map(|(a, n)| AntennaRange { antenna: *a, distance_m: a.dist(tx) + n })
            .collect();
        // A generous residual cap isolates the triangle filter: the fit
        // itself may be loose at bad geometry, but no antenna may be
        // dropped.
        let cfg = LocalizerConfig { max_residual_m: 10.0, ..LocalizerConfig::default() };
        let pos = locate(&ranges, &cfg).unwrap();
        prop_assert_eq!(pos.n_used, 3, "consistent LOS antenna rejected");
    }

    /// Median and percentiles are order statistics: bounded by min/max and
    /// monotone in the percentile argument.
    #[test]
    fn percentile_sane(xs in proptest::collection::vec(-100.0f64..100.0, 1..60)) {
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let med = median(&xs);
        prop_assert!(med >= lo - 1e-12 && med <= hi + 1e-12);
        let mut prev = lo;
        for p in [10.0, 30.0, 50.0, 70.0, 90.0] {
            let v = percentile(&xs, p);
            prop_assert!(v + 1e-12 >= prev);
            prev = v;
        }
    }

    /// The innovation gate bounds the influence any single fix can exert
    /// on a maintained track: a sub-gate measurement moves the filtered
    /// estimate by at most `gate_sigma · √S` (the Kalman gain is ≤ 1, so
    /// the shift is at most the innovation), and an outlier above the
    /// gate never moves the estimate *silently* — it trips the gate,
    /// demotes the mode machine to ACQUIRE and grows the anomaly score,
    /// which is the guarantee the quarantine policy of
    /// `docs/ADVERSARIAL.md` is built on. Holds for arbitrary filter
    /// states (random range, velocity ramp, cadence and noise knobs).
    #[test]
    fn gate_bounds_single_fix_influence(
        d0 in 1.0f64..40.0,
        vel_step in -0.3f64..0.3,
        warmups in 2usize..10,
        dt_ms in 20u64..500,
        offset_sigmas in 0.0f64..30.0,
        sign in 0usize..2,
        gate in 2.0f64..8.0,
        noise_m in 0.02f64..0.5,
    ) {
        let cfg = TrackerConfig {
            gate_sigma: gate,
            measurement_noise_m: noise_m,
            ..TrackerConfig::default()
        };
        let mut tracker = ClientTracker::new(cfg);
        let mut t = Instant::ZERO;
        for i in 0..warmups {
            tracker.observe(t, Some(d0 + vel_step * i as f64), true);
            t += Duration::from_millis(dt_ms);
        }
        // A probe clone recovers the post-predict prediction and the
        // innovation variance S at time `t` (S is independent of the
        // measurement value), so the outlier can be *constructed* at an
        // exact sigma offset from the prediction.
        let mut probe = tracker.clone();
        let probe_upd = probe.observe(t, Some(d0), true);
        let predicted = probe_upd.predicted_m.expect("warmed-up filter has a state");
        let sigma = probe_upd.innovation.expect("probe fix has an innovation").s_m2.sqrt();
        let z = predicted + if sign == 0 { -1.0 } else { 1.0 } * offset_sigmas * sigma;

        let pre_score = tracker.anomaly_score();
        let upd = tracker.observe(t, Some(z), true);
        let fused = upd.fused_m.expect("fix always leaves a state");
        if offset_sigmas > gate + 1e-6 {
            // Outlier: explicit track break, never a silent nudge.
            prop_assert!(upd.gated, "outlier at {offset_sigmas:.2} sigmas not gated");
            prop_assert_eq!(upd.next_mode, TrackMode::Acquire);
            // The re-seed at the outlier is deliberate and flagged; the
            // anomaly score must grow by at least the run increment.
            prop_assert!((fused - z).abs() < 1e-9);
            prop_assert!(
                tracker.anomaly_score() >= pre_score + 1.0 - 1e-9,
                "gated fix must grow the anomaly score: {pre_score} -> {}",
                tracker.anomaly_score()
            );
        } else if offset_sigmas < gate - 1e-6 {
            // Sub-gate: fused, and the estimate moves by at most the
            // gate bound (and never further than the innovation itself).
            prop_assert!(!upd.gated);
            prop_assert!(
                (fused - predicted).abs() <= (z - predicted).abs() + 1e-9,
                "shift {} exceeds innovation {}",
                (fused - predicted).abs(),
                (z - predicted).abs()
            );
            prop_assert!(
                (fused - predicted).abs() <= gate * sigma + 1e-9,
                "shift {} exceeds gate bound {}",
                (fused - predicted).abs(),
                gate * sigma
            );
        }
    }

    /// Frame round trip: any encodable frame parses back to itself.
    #[test]
    fn frame_round_trip(seq in 0u16..u16::MAX, ch in 1u16..200, dwell in 0u32..10_000) {
        use chronos_suite::link::frame::Frame;
        for f in [
            Frame::HopAdvert { seq, next_channel: ch, dwell_us: dwell },
            Frame::Ack { seq },
            Frame::Measure { seq },
            Frame::Data { len: (dwell % 1500) as u16 },
        ] {
            let enc = f.encode();
            prop_assert_eq!(Frame::parse(&enc).unwrap(), f);
        }
    }
}

// ---------------------------------------------------------------------------
// Admission-queue properties (PR 7): a reference model of the bounded
// multi-class queue is replayed against the real `AdmissionQueue` over
// arbitrary offer/pop interleavings. The model is written straight from
// the documented contract (strict priority, FIFO within class, per-class
// then global bounds, ACQUIRE-displaces-newest-BACKGROUND), so any
// divergence is a bug in one of the two — and shedding being a pure
// function of the arrival sequence falls out as replay determinism.

/// One step of an interleaving: offer a request of a class, or pop.
#[derive(Debug, Clone, Copy)]
enum QueueOp {
    Offer(chronos_suite::link::traffic::TrafficClass),
    Pop,
}

fn queue_op() -> impl Strategy<Value = QueueOp> {
    use chronos_suite::link::traffic::TrafficClass;
    prop_oneof![
        Just(QueueOp::Offer(TrafficClass::Acquire)),
        Just(QueueOp::Offer(TrafficClass::Track)),
        Just(QueueOp::Offer(TrafficClass::Background)),
        Just(QueueOp::Pop),
        Just(QueueOp::Pop),
    ]
}

fn admission_cfg() -> impl Strategy<Value = chronos_suite::link::admission::AdmissionConfig> {
    (1usize..6, 1usize..6, 1usize..6, 1usize..12).prop_map(|(a, t, b, g)| {
        chronos_suite::link::admission::AdmissionConfig {
            acquire_depth: a,
            track_depth: t,
            background_depth: b,
            global_depth: g,
        }
    })
}

/// The reference model: three FIFO lanes and the documented bounds.
struct ModelQueue {
    cfg: chronos_suite::link::admission::AdmissionConfig,
    lanes: [std::collections::VecDeque<u32>; 3],
}

impl ModelQueue {
    fn new(cfg: chronos_suite::link::admission::AdmissionConfig) -> Self {
        ModelQueue {
            cfg,
            lanes: Default::default(),
        }
    }

    fn total(&self) -> usize {
        self.lanes.iter().map(|l| l.len()).sum()
    }

    fn offer(
        &mut self,
        class: chronos_suite::link::traffic::TrafficClass,
        item: u32,
    ) -> chronos_suite::link::admission::Offer<u32> {
        use chronos_suite::link::admission::Offer;
        use chronos_suite::link::traffic::TrafficClass;
        let lane = class.rank();
        if self.lanes[lane].len() >= self.cfg.depth(class) {
            return Offer::Rejected(item);
        }
        if self.total() >= self.cfg.global_depth {
            let bg = TrafficClass::Background.rank();
            if class == TrafficClass::Acquire && !self.lanes[bg].is_empty() {
                let victim = self.lanes[bg].pop_back().unwrap();
                self.lanes[lane].push_back(item);
                return Offer::Displaced(victim);
            }
            return Offer::Rejected(item);
        }
        self.lanes[lane].push_back(item);
        Offer::Enqueued
    }

    fn pop(&mut self) -> Option<(chronos_suite::link::traffic::TrafficClass, u32)> {
        use chronos_suite::link::traffic::TrafficClass;
        TrafficClass::ALL
            .into_iter()
            .find(|c| !self.lanes[c.rank()].is_empty())
            .map(|c| (c, self.lanes[c.rank()].pop_front().unwrap()))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The real queue agrees with the reference model step for step —
    /// offer outcomes (including which BACKGROUND victim a full queue
    /// displaces), pop order (strict priority, FIFO within class) and
    /// occupancy — and never exceeds a bound at any intermediate state.
    #[test]
    fn admission_queue_matches_reference_model(
        cfg in admission_cfg(),
        ops in proptest::collection::vec(queue_op(), 1..200),
    ) {
        use chronos_suite::link::admission::AdmissionQueue;
        use chronos_suite::link::traffic::TrafficClass;
        let mut real = AdmissionQueue::new(cfg);
        let mut model = ModelQueue::new(cfg);
        for (i, op) in ops.iter().enumerate() {
            match op {
                QueueOp::Offer(class) => {
                    let got = real.offer(*class, i as u32);
                    let want = model.offer(*class, i as u32);
                    prop_assert_eq!(got, want, "offer {} diverged", i);
                }
                QueueOp::Pop => {
                    prop_assert_eq!(real.pop(), model.pop(), "pop {} diverged", i);
                }
            }
            // Bounds hold at every intermediate state, not just at the end.
            for c in TrafficClass::ALL {
                prop_assert!(real.len_class(c) <= cfg.depth(c));
                prop_assert_eq!(real.len_class(c), model.lanes[c.rank()].len());
            }
            prop_assert!(real.len() <= cfg.global_depth);
            prop_assert_eq!(real.peek_class(), TrafficClass::ALL.into_iter()
                .find(|c| real.len_class(*c) > 0));
        }
        // High-water marks are consistent: each per-class mark is within
        // its bound, and the global mark is within the global bound.
        for c in TrafficClass::ALL {
            prop_assert!(real.high_water().get(c) <= cfg.depth(c) as u64);
        }
        prop_assert!(real.high_water_total() <= cfg.global_depth);
    }

    /// Replaying an interleaving yields bitwise-identical outcomes:
    /// shedding is a deterministic function of the arrival sequence.
    #[test]
    fn admission_queue_replays_deterministically(
        cfg in admission_cfg(),
        ops in proptest::collection::vec(queue_op(), 1..200),
    ) {
        use chronos_suite::link::admission::AdmissionQueue;
        let replay = || {
            let mut q = AdmissionQueue::new(cfg);
            let mut trace = Vec::new();
            for (i, op) in ops.iter().enumerate() {
                match op {
                    QueueOp::Offer(class) => {
                        trace.push(format!("{:?}", q.offer(*class, i as u32)));
                    }
                    QueueOp::Pop => trace.push(format!("{:?}", q.pop())),
                }
            }
            (trace, q.high_water(), q.high_water_total())
        };
        prop_assert_eq!(replay(), replay());
    }

    /// Strict priority across any interleaving: a pop never returns a
    /// class while a higher-priority lane has a waiter, and an ACQUIRE
    /// offer is only ever *rejected* when its own lane is at depth or
    /// the queue is globally full with nothing left to displace.
    #[test]
    fn admission_queue_priority_and_acquire_last(
        cfg in admission_cfg(),
        ops in proptest::collection::vec(queue_op(), 1..200),
    ) {
        use chronos_suite::link::admission::{AdmissionQueue, Offer};
        use chronos_suite::link::traffic::TrafficClass;
        let mut q = AdmissionQueue::new(cfg);
        for (i, op) in ops.iter().enumerate() {
            match op {
                QueueOp::Offer(class) => {
                    let before_class = q.len_class(*class);
                    let before_total = q.len();
                    let before_bg = q.len_class(TrafficClass::Background);
                    match q.offer(*class, i as u32) {
                        Offer::Rejected(item) => {
                            prop_assert_eq!(item, i as u32, "wrong item handed back");
                            let class_full = before_class >= cfg.depth(*class);
                            let global_full = before_total >= cfg.global_depth;
                            prop_assert!(class_full || global_full);
                            if *class == TrafficClass::Acquire && !class_full {
                                // ACQUIRE sheds *last*: only a globally
                                // full queue with no background left.
                                prop_assert!(global_full && before_bg == 0);
                            }
                        }
                        Offer::Displaced(_) => {
                            prop_assert_eq!(*class, TrafficClass::Acquire,
                                "only ACQUIRE may displace");
                            prop_assert!(before_total >= cfg.global_depth);
                            prop_assert!(before_bg > 0);
                        }
                        Offer::Enqueued => {
                            prop_assert!(before_class < cfg.depth(*class));
                            prop_assert!(before_total < cfg.global_depth);
                        }
                    }
                }
                QueueOp::Pop => {
                    if let Some((class, _)) = q.pop() {
                        for higher in TrafficClass::ALL {
                            if higher.outranks(class) {
                                prop_assert_eq!(q.len_class(higher), 0,
                                    "popped past a waiting higher class");
                            }
                        }
                    }
                }
            }
        }
    }
}
