//! The adversarial-ranging test tier: attacker models composed into the
//! multi-client service, per-client anomaly scoring and the quarantine
//! policy (see `docs/ADVERSARIAL.md`).
//!
//! Contracts pinned here:
//!
//! * **Collateral damage**: for every attacker variant at every
//!   strength, the *honest* clients' tracked-position MAE stays within
//!   10% of the attack-free control run — one compromised client must
//!   not poison its neighbors' fixes.
//! * **Bounded detection**: at the strongest strength every variant is
//!   quarantined within 20 sweeps of the attack onset.
//! * **Withheld estimates**: quarantined outcomes carry link, truth and
//!   anomaly evidence but no distance/position estimates.
//! * **Determinism under attack**: window reports are bitwise identical
//!   across worker-thread counts {1, 2, 8} — the seeding contract of
//!   `chronos_core::engine` survives attacker-induced plan and timing
//!   changes.
//!
//! Runs use the coarse estimator grid (`adversarial_chronos`) so the
//! tier stays affordable in debug builds.

use chronos_bench::adversarial::{
    adversarial_service, inject_attacker, jam_attacker, replay_attacker, run_adversarial,
    AdversarialRun, AdversarialScenarioConfig, Strength, ATTACKER, CLIENT_POSITIONS,
    DETECT_SENTINEL,
};
use chronos_suite::link::time::Duration;
use chronos_suite::rf::environment::Attacker;
use std::sync::OnceLock;

const SEED: u64 = 73;
const EPOCHS: usize = 14;
// Past the quarantine policy's `min_sweeps` warm-up guard: an attack
// whose only gate violation lands *inside* the guard window re-seeds
// the filter at the spoofed fix and is consistent ever after — the
// one-shot-onset caveat documented in `docs/ADVERSARIAL.md`.
const ONSET: usize = 6;

/// The attack-free control run, computed once and shared by the
/// per-variant tests (same seed, same clients, attacker never enabled).
fn baseline() -> &'static AdversarialRun {
    static BASELINE: OnceLock<AdversarialRun> = OnceLock::new();
    BASELINE.get_or_init(|| {
        run_adversarial(&AdversarialScenarioConfig::attack_free(SEED, EPOCHS, ONSET))
    })
}

/// Runs one attack variant at all three strengths and asserts the tier's
/// contracts against the attack-free control.
fn assert_variant(kind: &str, build: fn(Strength) -> Attacker) {
    let base = baseline();
    let base_err = base.honest_err_m();
    assert!(
        base_err.is_finite(),
        "control run must produce honest fixes"
    );
    assert_eq!(
        base.detect_latency_sweeps(),
        DETECT_SENTINEL,
        "control run must never quarantine anyone"
    );
    for s in [Strength::Weak, Strength::Mid, Strength::Strong] {
        let cfg = AdversarialScenarioConfig {
            name: format!("{kind}_{s:?}"),
            attacker: Some(build(s)),
            ..AdversarialScenarioConfig::attack_free(SEED, EPOCHS, ONSET)
        };
        let run = run_adversarial(&cfg);
        let err = run.honest_err_m();
        assert!(
            err <= base_err * 1.10,
            "{kind}/{s:?}: honest MAE {err:.4} m exceeds 110% of attack-free {base_err:.4} m"
        );
        // Pre-onset sweeps are clean for everyone: nobody may be
        // quarantined before the attack exists.
        for r in run.reports.iter().take(ONSET) {
            assert!(
                r.outcomes.iter().all(|o| !o.quarantined),
                "{kind}/{s:?}: quarantine before the attack onset"
            );
        }
        // Honest clients are never quarantined, at any strength.
        for r in &run.reports {
            for o in r.outcomes.iter().filter(|o| o.client != ATTACKER) {
                assert!(
                    !o.quarantined,
                    "{kind}/{s:?}: honest client {} quarantined",
                    o.client
                );
            }
        }
        if s == Strength::Strong {
            let latency = run.detect_latency_sweeps();
            assert!(
                latency <= 20.0,
                "{kind}/strong: attacker not quarantined within 20 sweeps \
                 (latency {latency})"
            );
            // Quarantined outcomes withhold every estimate but keep the
            // evidence trail.
            let q = run
                .reports
                .iter()
                .flat_map(|r| r.outcomes.iter())
                .find(|o| o.client == ATTACKER && o.quarantined)
                .expect("a quarantined attacker outcome");
            assert!(q.distance_m.is_none());
            assert!(q.tracked_m.is_none());
            assert!(q.position.is_none());
            assert!(q.tracked_pos.is_none());
            assert!(q.pos_error_m.is_none());
            assert!(q.tracked_pos_error_m.is_none());
            assert!(q.anomaly_score.is_some(), "evidence must stay reported");
            assert!(
                q.truth_pos.dist(CLIENT_POSITIONS[ATTACKER]) < 1e-12,
                "ground truth stays reported under quarantine"
            );
            assert!(q.truth_m > 0.0);
        }
    }
}

#[test]
fn replay_attacks_spare_honest_clients_and_strongest_is_flagged() {
    assert_variant("replay", replay_attacker);
}

#[test]
fn inject_attacks_spare_honest_clients_and_strongest_is_flagged() {
    assert_variant("inject", inject_attacker);
}

#[test]
fn jam_attacks_spare_honest_clients_and_strongest_is_flagged() {
    assert_variant("jam", jam_attacker);
}

#[test]
fn window_reports_bitwise_identical_across_thread_counts_under_attack() {
    // The seeding contract must hold while an attacker reshapes sweep
    // plans (jam → band_loss), trips gates and flips quarantine state:
    // none of that may depend on the worker-thread schedule.
    let fingerprint = |threads: usize| {
        let mut svc = adversarial_service(threads);
        let mut fps = Vec::new();
        for w in 0..6u64 {
            if w == 2 {
                svc.client_mut(ATTACKER).ctx.attacker = Some(replay_attacker(Strength::Strong));
            }
            let r = svc.run_until(SEED, svc.clock() + Duration::from_millis(250));
            for o in &r.outcomes {
                fps.push((
                    o.client,
                    o.sweep,
                    o.quarantined,
                    o.anomaly_score.map(f64::to_bits),
                    o.distance_m.map(f64::to_bits),
                    o.tracked_pos.map(|p| (p.x.to_bits(), p.y.to_bits())),
                    o.pos_error_m.map(f64::to_bits),
                ));
            }
        }
        fps
    };
    let one = fingerprint(1);
    assert!(
        one.iter().any(|f| f.2),
        "the attacker must be quarantined inside the fingerprinted span"
    );
    assert_eq!(one, fingerprint(2), "1 vs 2 worker threads");
    assert_eq!(one, fingerprint(8), "1 vs 8 worker threads");
}
