//! Integration tests for the event-driven continuous sweep engine:
//! the `run_epoch` compatibility wrapper must reproduce the pre-engine
//! epoch-barrier outcomes, `WindowReport`s must be bitwise identical
//! across worker-thread counts, client churn must never corrupt the
//! arbiter's single-charge airtime accounting, the engine must beat
//! the epoch barrier's throughput on a mixed ACQUIRE/TRACK population,
//! and with the ingestion front-end shedding at 3x overload, admitted
//! service must stay fair across clients and window reports bitwise
//! identical across worker-thread counts.

use chronos_bench::tracking::mixed_comparison;
use chronos_suite::core::config::ChronosConfig;
use chronos_suite::core::service::{RangingService, ServiceConfig};
use chronos_suite::core::tracker::{TrackMode, TrackerConfig};
use chronos_suite::link::time::{Duration, Instant};
use chronos_suite::rf::csi::MeasurementContext;
use chronos_suite::rf::environment::Environment;
use chronos_suite::rf::geometry::Point;
use chronos_suite::rf::hardware::{ideal_device, AntennaArray};

fn ideal_ctx(d: f64) -> MeasurementContext {
    let mut ctx = MeasurementContext::new(
        Environment::free_space(),
        ideal_device(AntennaArray::single()),
        Point::new(0.0, 0.0),
        ideal_device(AntennaArray::laptop()),
        Point::new(d, 0.0),
    );
    ctx.snr.snr_at_1m_db = 60.0;
    ctx
}

/// A deliberately coarse estimator for the scheduling-behavior tests:
/// they assert determinism, accounting and cadence — not accuracy — so
/// a cheap inversion keeps the suite fast. The golden-equivalence test
/// keeps the full `ChronosConfig::ideal()` its capture was made with.
fn quick_chronos() -> ChronosConfig {
    ChronosConfig {
        max_iters: 120,
        grid_step_ns: 0.5,
        ..ChronosConfig::ideal()
    }
}

fn adaptive_service_with(
    distances: &[f64],
    threads: usize,
    chronos: ChronosConfig,
) -> RangingService {
    let cfg = ServiceConfig {
        threads,
        ..ServiceConfig::adaptive(TrackerConfig::default())
    };
    let mut svc = RangingService::new(cfg);
    for &d in distances {
        let id = svc.add_client(ideal_ctx(d), chronos.clone());
        svc.client_mut(id).sweep_cfg.medium.loss_prob = 0.0;
    }
    svc
}

fn adaptive_service(distances: &[f64], threads: usize) -> RangingService {
    adaptive_service_with(distances, threads, quick_chronos())
}

/// Pre-refactor `run_epoch` outcomes, captured from the epoch-barrier
/// implementation (commit `edf396d`) on a seeded N=8 adaptive scenario:
/// clients at 2.0 + 0.75·i meters, lossless, seeds 9000+e for four
/// epochs. Tuples: (epoch, client, mode, bands, start_ns, finish_ns,
/// distance_bits, tracked_bits). Timing and scheduling are integer
/// arithmetic over the seeded RNG stream and must match exactly;
/// estimates go through transcendental math, so they are compared as
/// f64s within 1e-9 of the captured values.
type GoldenRow = (u64, usize, char, usize, u64, u64, u64, u64);
const GOLDEN_OUTCOMES: [GoldenRow; 32] = [
    (
        0,
        0,
        'A',
        35,
        0,
        83430574,
        4611698167882507643,
        4611698167882507643,
    ),
    (
        0,
        1,
        'A',
        35,
        3000000,
        95824574,
        4613270463158442975,
        4613270463158442975,
    ),
    (
        0,
        2,
        'A',
        35,
        6000000,
        96428574,
        4614919979402991581,
        4614919979402991581,
    ),
    (
        0,
        3,
        'A',
        35,
        9000000,
        100826574,
        4616398783832167892,
        4616398783832167892,
    ),
    (
        0,
        4,
        'A',
        35,
        93324711,
        185551285,
        4617242983739583829,
        4617242983739583829,
    ),
    (
        0,
        5,
        'A',
        35,
        96324711,
        189751285,
        4618086888215502367,
        4618086888215502367,
    ),
    (
        0,
        6,
        'A',
        35,
        99324711,
        189753285,
        4618931182644417621,
        4618931182644417621,
    ),
    (
        0,
        7,
        'A',
        35,
        102324711,
        190555285,
        4619775514158874109,
        4619775514158874109,
    ),
    (
        1,
        0,
        'A',
        35,
        195555285,
        278985859,
        4611698152128924424,
        4611698153906268691,
    ),
    (
        1,
        1,
        'A',
        35,
        198555285,
        281985859,
        4613270425633943191,
        4613270429867516826,
    ),
    (
        1,
        2,
        'A',
        35,
        201555285,
        292181859,
        4614919953913158487,
        4614919956788961921,
    ),
    (
        1,
        3,
        'A',
        35,
        204555285,
        297581859,
        4616398806313334313,
        4616398803776973429,
    ),
    (
        1,
        4,
        'A',
        35,
        288879996,
        383106570,
        4617242875762918107,
        4617242887945016944,
    ),
    (
        1,
        5,
        'A',
        35,
        291879996,
        383706570,
        4618086902109627323,
        4618086900542070089,
    ),
    (
        1,
        6,
        'A',
        35,
        294879996,
        389106570,
        4618931144409667980,
        4618931148723373131,
    ),
    (
        1,
        7,
        'A',
        35,
        297879996,
        390106570,
        4619775531771915593,
        4619775529784784293,
    ),
    (
        2,
        0,
        'T',
        12,
        395106570,
        423114872,
        4611696727235413193,
        4611696995904952099,
    ),
    (
        2,
        1,
        'T',
        12,
        398106570,
        426114872,
        4613382915820784453,
        4613361538628014004,
    ),
    (
        2,
        2,
        'T',
        12,
        401106570,
        429914872,
        4615069637333026113,
        4615041195264717968,
    ),
    (
        2,
        3,
        'T',
        12,
        404106570,
        435314872,
        4616473698952979108,
        4616459472825990377,
    ),
    (
        2,
        4,
        'T',
        12,
        427103614,
        458509916,
        4617317733216584927,
        4617298171053369718,
    ),
    (
        2,
        5,
        'T',
        12,
        430103614,
        459711916,
        4618161834665593869,
        4618142266883255091,
    ),
    (
        2,
        6,
        'T',
        12,
        433103614,
        461911916,
        4619006055513179388,
        4618986487347333561,
    ),
    (
        2,
        7,
        'T',
        12,
        436103614,
        466111916,
        4619850215980920724,
        4619830713483894346,
    ),
    (
        3,
        0,
        'T',
        12,
        471111916,
        499120218,
        4611696855121975407,
        4611696796148556129,
    ),
    (
        3,
        1,
        'T',
        12,
        474111916,
        502520218,
        4613382737403475484,
        4613382893874504853,
    ),
    (
        3,
        2,
        'T',
        12,
        477111916,
        505520218,
        4615069927700722903,
        4615069908715492855,
    ),
    (
        3,
        3,
        'T',
        12,
        480111916,
        509720218,
        4616473769503235623,
        4616473797287106960,
    ),
    (
        3,
        4,
        'T',
        12,
        503108960,
        532717262,
        4617317988989709353,
        4617315891625026047,
    ),
    (
        3,
        5,
        'T',
        12,
        506108960,
        540113262,
        4618161866216627749,
        4618159884100018769,
    ),
    (
        3,
        6,
        'T',
        12,
        509108960,
        538717262,
        4619005960860077749,
        4619004027631402663,
    ),
    (
        3,
        7,
        'T',
        12,
        512108960,
        543515262,
        4619850281285313619,
        4619848291279052277,
    ),
];

/// Per-epoch (airtime_span_ns, bands_planned, bands_full_sweep) from the
/// same pre-refactor capture.
const GOLDEN_EPOCHS: [(u64, usize, usize); 4] = [
    (190555285, 280, 280),
    (194551285, 280, 280),
    (71005346, 96, 280),
    (72403346, 96, 280),
];

#[test]
fn run_epoch_wrapper_reproduces_pre_refactor_outcomes() {
    let distances: Vec<f64> = (0..8).map(|i| 2.0 + 0.75 * i as f64).collect();
    let mut svc = adaptive_service_with(&distances, 0, ChronosConfig::ideal());
    for e in 0..4u64 {
        let r = svc.run_epoch(9000 + e);
        let (span, planned, full) = GOLDEN_EPOCHS[e as usize];
        assert_eq!(r.airtime_span.as_nanos(), span, "epoch {e} span");
        assert_eq!(r.bands_planned, planned, "epoch {e} bands planned");
        assert_eq!(r.bands_full_sweep, full, "epoch {e} bands full");
        assert_eq!(r.outcomes.len(), 8, "epoch {e} must report every client");
        for o in &r.outcomes {
            let (_, _, mode, bands, start, finish, d_bits, t_bits) = GOLDEN_OUTCOMES
                .iter()
                .find(|g| g.0 == e && g.1 == o.client)
                .expect("golden row");
            let want_mode = if *mode == 'A' {
                TrackMode::Acquire
            } else {
                TrackMode::Track
            };
            assert_eq!(o.mode, want_mode, "epoch {e} client {} mode", o.client);
            assert_eq!(o.bands_planned, *bands, "epoch {e} client {}", o.client);
            assert_eq!(
                o.started.as_nanos(),
                *start,
                "epoch {e} client {} start",
                o.client
            );
            assert_eq!(
                o.finished.as_nanos(),
                *finish,
                "epoch {e} client {} finish",
                o.client
            );
            let d = o.distance_m.expect("estimate");
            let want_d = f64::from_bits(*d_bits);
            assert!(
                (d - want_d).abs() < 1e-9,
                "epoch {e} client {}: distance {d} vs pre-refactor {want_d}",
                o.client
            );
            let t = o.tracked_m.expect("tracked");
            let want_t = f64::from_bits(*t_bits);
            assert!(
                (t - want_t).abs() < 1e-9,
                "epoch {e} client {}: tracked {t} vs pre-refactor {want_t}",
                o.client
            );
        }
    }
}

/// The golden capture above pins the engine's *outcomes*; this pins the
/// mechanism that produces them: a **warm, reused** scratch pipeline
/// (the engine's per-worker arena) must emit sweeps bitwise identical to
/// a fresh throwaway pipeline per sweep — no state may leak between
/// sweeps through the arena, across clients, modes or sweep ordinals.
#[test]
fn warm_pipeline_sweeps_match_fresh_scratch_bitwise() {
    use chronos_suite::core::SweepPipeline;
    use chronos_suite::link::time::Instant;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let svc = adaptive_service_with(&[2.0, 4.5], 0, ChronosConfig::ideal());
    let mut warm = SweepPipeline::new();
    for sweep in 0..3u64 {
        for client in 0..2usize {
            let session = svc.client(client);
            let t = Instant::from_millis(100 * sweep + client as u64);
            let fresh_out = {
                let mut rng = StdRng::seed_from_u64(1000 + 10 * sweep + client as u64);
                session.sweep_with(&session.sweep_cfg, &mut rng, t)
            };
            let warm_out = {
                let mut rng = StdRng::seed_from_u64(1000 + 10 * sweep + client as u64);
                session.sweep_with_pipeline(&session.sweep_cfg, &mut rng, t, &mut warm)
            };
            assert_eq!(fresh_out.tofs.len(), warm_out.tofs.len());
            for (a, b) in fresh_out.tofs.iter().zip(warm_out.tofs.iter()) {
                match (a, b) {
                    (Ok(ta), Ok(tb)) => {
                        assert_eq!(ta.tof_ns.to_bits(), tb.tof_ns.to_bits());
                        assert_eq!(ta.distance_m.to_bits(), tb.distance_m.to_bits());
                    }
                    (Err(ea), Err(eb)) => assert_eq!(format!("{ea}"), format!("{eb}")),
                    other => panic!("fresh/warm disagreement: {other:?}"),
                }
            }
            assert_eq!(
                fresh_out.position_candidates.len(),
                warm_out.position_candidates.len()
            );
            for (a, b) in fresh_out
                .position_candidates
                .iter()
                .zip(warm_out.position_candidates.iter())
            {
                assert_eq!(a.point.x.to_bits(), b.point.x.to_bits());
                assert_eq!(a.point.y.to_bits(), b.point.y.to_bits());
                assert_eq!(a.residual_m.to_bits(), b.residual_m.to_bits());
            }
        }
    }

    // And the engine's own execution (one shared worker pipeline) still
    // reproduces per-session sweeps: covered by the golden capture test
    // above, whose distances come through the warm engine pipelines.
}

#[test]
fn window_reports_bitwise_identical_across_thread_counts() {
    let fingerprint = |threads: usize| {
        let mut svc = adaptive_service(&[2.0, 3.5, 5.0, 6.5], threads);
        let mut fp = Vec::new();
        // Two windows so in-flight sweeps cross a window boundary.
        for deadline in [400u64, 900] {
            let w = svc.run_until(1234, Instant::from_millis(deadline));
            for o in &w.outcomes {
                fp.push((
                    o.client,
                    o.sweep,
                    o.mode,
                    o.started.as_nanos(),
                    o.finished.as_nanos(),
                    o.distance_m.map(f64::to_bits),
                    o.tracked_m.map(f64::to_bits),
                ));
            }
        }
        fp
    };
    let one = fingerprint(1);
    assert!(one.len() > 12, "expected a busy window, got {}", one.len());
    assert_eq!(one, fingerprint(2), "threads=2 diverged");
    assert_eq!(one, fingerprint(8), "threads=8 diverged");
}

/// The engine spawns its worker pool exactly once: across consecutive
/// windows the same `WorkerRuntime` keeps serving (same instance, same
/// thread count) with its lifetime batch counter growing — scheduling
/// never spawns a thread per batch or per window.
#[test]
fn worker_runtime_persists_across_windows() {
    use std::sync::Arc;
    let mut svc = adaptive_service(&[2.0, 3.5, 5.0, 6.5], 4);
    svc.run_until(4321, Instant::from_millis(400));
    let (first_ptr, batches_after_first) = {
        let rt = svc
            .engine()
            .runtime()
            .expect("a multi-threaded engine builds its pool on the first multi-sweep batch");
        assert_eq!(
            rt.workers(),
            3,
            "4 threads = 3 pool workers + helping submitter"
        );
        assert!(rt.batches_run() > 0, "no batch reached the pool");
        (Arc::as_ptr(rt), rt.batches_run())
    };
    // Steady-state TRACK batches are usually single sweeps and run
    // inline; joining clients all fall due at once, forcing the second
    // window to batch through the pool again.
    for d in [3.0, 4.5, 5.5, 7.0] {
        let id = svc.add_client(ideal_ctx(d), quick_chronos());
        svc.client_mut(id).sweep_cfg.medium.loss_prob = 0.0;
    }
    svc.run_until(4321, Instant::from_millis(900));
    let rt = svc
        .engine()
        .runtime()
        .expect("the pool outlives its window");
    assert_eq!(
        Arc::as_ptr(rt),
        first_ptr,
        "the engine must reuse its pool, never respawn it"
    );
    assert_eq!(rt.workers(), 3, "worker count must stay fixed for life");
    assert!(
        rt.batches_run() > batches_after_first,
        "the second window must batch through the same pool"
    );
}

/// Clients joining and leaving mid-run must never corrupt the arbiter's
/// airtime accounting: every sweep is charged exactly one window, and
/// once the engine goes quiescent the tracked airtime equals the sum of
/// the reported sweep durations — no dangling projections, no double
/// charges.
#[test]
fn churn_keeps_airtime_accounting_single_charge() {
    let mut svc = adaptive_service(&[2.5, 4.0, 6.0], 0);
    let w = svc.run_until(77, Instant::from_millis(2000));
    assert!(w.completed() > 10, "window too quiet: {}", w.completed());
    // Now remove everyone and drain: the engine must go quiescent.
    for idx in 0..svc.n_clients() {
        svc.remove_client(idx);
    }
    let w2 = svc.run_until(77, Instant::from_millis(4000));
    assert_eq!(svc.n_active(), 0);
    assert_eq!(svc.engine().pending_events(), 0, "engine not quiescent");
    // Single-charge invariant over the final window: tracked airtime ==
    // sum of reported sweep durations (completion replaced projection;
    // nothing dangles after the leaves).
    let reported: Duration = w2.outcomes.iter().fold(Duration::ZERO, |acc, o| {
        acc + o.finished.saturating_since(o.started)
    });
    assert_eq!(
        svc.arbiter().total_tracked_airtime(),
        reported,
        "arbiter charge diverged from reported sweeps"
    );

    // Join after churn: fresh slots, scheduling resumes, accounting
    // stays single-charge.
    let id = svc.add_client(ideal_ctx(3.0), ChronosConfig::ideal());
    svc.client_mut(id).sweep_cfg.medium.loss_prob = 0.0;
    assert_eq!(id, 3, "slot indices are never reused");
    let w3 = svc.run_until(78, Instant::from_millis(4600));
    assert!(w3.outcomes.iter().all(|o| o.client == id));
    assert!(w3.completed() >= 2, "joiner swept {} times", w3.completed());
    let reported: Duration = w3.outcomes.iter().fold(Duration::ZERO, |acc, o| {
        acc + o.finished.saturating_since(o.started)
    });
    // The joiner may still have one sweep in flight at the deadline; its
    // window is charged but not yet reported, so tracked >= reported and
    // the difference is at most one projected sweep.
    let tracked = svc.arbiter().total_tracked_airtime();
    assert!(tracked >= reported, "{tracked} < {reported}");
    assert!(
        tracked - reported <= Duration::from_millis(120),
        "more than one sweep's airtime dangling: {tracked} vs {reported}"
    );
}

/// Churn under attack: a quarantined client that leaves and rejoins
/// gets a fresh slot with a zeroed anomaly score (identity is the slot,
/// not the radio — a re-associating device starts from scratch), the old
/// slot keeps its verdict, and the arbiter's single-charge airtime
/// accounting survives the whole episode.
#[test]
fn quarantined_client_rejoins_with_fresh_slot_and_clean_score() {
    use chronos_bench::adversarial::{
        adversarial_chronos, adversarial_service, replay_attacker, Strength, ATTACKER,
        CLIENT_POSITIONS,
    };

    let mut svc = adversarial_service(0);
    let charge = |r: &chronos_suite::core::EpochReport| {
        r.outcomes.iter().fold(Duration::ZERO, |acc, o| {
            acc + o.finished.saturating_since(o.started)
        })
    };
    // The single-charge invariant, checked after every round: the epoch
    // driver drops the previous rounds' arbiter windows at each round
    // start, so what the arbiter tracks afterwards must equal exactly
    // this round's reported sweep durations — every sweep charged one
    // window, completion replacing projection, attacker included.
    let assert_single_charge = |svc: &RangingService, r: &chronos_suite::core::EpochReport| {
        assert_eq!(
            svc.arbiter().total_tracked_airtime(),
            charge(r),
            "epoch {}: arbiter charge diverged from reported sweeps",
            r.epoch
        );
    };
    // Clean warm-up, then a blatant replay attack.
    for e in 0..7u64 {
        let r = svc.run_epoch(500 + e);
        assert_single_charge(&svc, &r);
    }
    svc.client_mut(ATTACKER).ctx.attacker = Some(replay_attacker(Strength::Strong));
    let mut detected = false;
    for e in 7..10u64 {
        let r = svc.run_epoch(500 + e);
        detected |= r
            .outcomes
            .iter()
            .any(|o| o.client == ATTACKER && o.quarantined);
        assert_single_charge(&svc, &r);
    }
    assert!(detected, "strong replay must be quarantined");
    assert!(svc.is_quarantined(ATTACKER));
    assert!(svc.anomaly_score(ATTACKER).expect("adaptive client") > 0.0);

    // The attacker leaves; its slot keeps the verdict but is never
    // scheduled again.
    assert!(svc.remove_client(ATTACKER));
    let r = svc.run_epoch(600);
    assert!(r.outcomes.iter().all(|o| o.client != ATTACKER));
    assert!(svc.is_quarantined(ATTACKER), "verdict outlives the leave");
    assert_single_charge(&svc, &r);

    // It rejoins (now honest): a fresh slot, a fresh tracker, a zeroed
    // anomaly score — and no inherited quarantine.
    let mut ctx = MeasurementContext::new(
        Environment::free_space(),
        ideal_device(AntennaArray::single()),
        CLIENT_POSITIONS[ATTACKER],
        ideal_device(AntennaArray::access_point()),
        Point::new(0.0, 0.0),
    );
    ctx.snr.snr_at_1m_db = 36.0;
    let id = svc.add_client(ctx, adversarial_chronos());
    svc.client_mut(id).sweep_cfg.medium.loss_prob = 0.0;
    assert_eq!(id, 3, "slot indices are never reused");
    assert!(!svc.is_quarantined(id));
    assert_eq!(svc.anomaly_score(id), Some(0.0), "score starts clean");

    for e in 0..3u64 {
        let r = svc.run_epoch(700 + e);
        for o in r.outcomes.iter().filter(|o| o.client == id) {
            assert!(!o.quarantined, "fresh slot must not inherit quarantine");
            assert!(o.tracked_pos.is_some(), "estimates served again");
        }
        assert_single_charge(&svc, &r);
    }
}

/// A removed client stops being scheduled across window boundaries (the
/// facade path; the engine-level mid-window `leave_at` event is covered
/// by the engine's own unit tests).
#[test]
fn removed_client_not_rescheduled_across_windows() {
    let mut svc = adaptive_service(&[2.5, 4.0], 0);
    let w1 = svc.run_until(5, Instant::from_millis(300));
    assert!(w1.outcomes.iter().any(|o| o.client == 1));
    svc.remove_client(1);
    let w2 = svc.run_until(5, Instant::from_millis(900));
    // At most one in-flight sweep of client 1 may still land; afterwards
    // only client 0 is scheduled.
    let late_c1 = w2
        .outcomes
        .iter()
        .filter(|o| o.client == 1 && o.started > Instant::from_millis(310))
        .count();
    assert_eq!(late_c1, 0, "removed client kept being scheduled");
    assert!(w2.outcomes.iter().filter(|o| o.client == 0).count() >= 5);
}

/// The acceptance bar of the engine refactor: at N=8 with a mixed
/// ACQUIRE/TRACK population the continuous engine must deliver at least
/// 1.3x the epoch barrier's sweeps/s, at no cost in TRACK accuracy.
#[test]
fn event_engine_outpaces_epoch_barrier_at_n8_mixed() {
    let cmp = mixed_comparison(8, 42, 3, Duration::from_millis(500));
    assert!(
        cmp.gain() >= 1.3,
        "event {:.1} sweeps/s vs epoch {:.1} ({}x)",
        cmp.event_sweeps_per_sec,
        cmp.epoch_sweeps_per_sec,
        cmp.gain()
    );
    assert!(
        cmp.event_utilization >= cmp.epoch_utilization - 0.05,
        "event utilization {} vs epoch {}",
        cmp.event_utilization,
        cmp.epoch_utilization
    );
    // TRACK-mode accuracy must not degrade: same estimator, same subset
    // plans — only the cadence changed. The margin covers per-sweep RNG
    // noise only (measured: 0.0022 m event vs 0.0020 m epoch), not a
    // systematic regression.
    assert!(
        cmp.event_track_mae_m <= 1.25 * cmp.epoch_track_mae_m + 2e-3,
        "TRACK MAE {} vs epoch {}",
        cmp.event_track_mae_m,
        cmp.epoch_track_mae_m
    );
}

/// Epoch rounds and continuous windows compose on one service: the
/// clock is monotonic, trackers persist across the switch, and the
/// epoch wrapper still reports one outcome per active client.
#[test]
fn epochs_and_windows_compose() {
    let mut svc = adaptive_service(&[3.0, 5.5], 0);
    let e0 = svc.run_epoch(31);
    assert_eq!(e0.outcomes.len(), 2);
    let w = svc.run_until(31, svc.clock() + Duration::from_millis(300));
    assert!(w.started >= e0.started + e0.airtime_span);
    assert!(w.completed() >= 2);
    let e1 = svc.run_epoch(32);
    assert_eq!(e1.epoch, 1, "epoch counter ignores windows");
    assert!(e1.started >= w.ended);
    for c in 0..2usize {
        // Sweeps carried over from the window (in flight or due past its
        // deadline) are drained into the round first; every client still
        // gets a fresh sweep of its own.
        assert!(
            e1.outcomes.iter().any(|o| o.client == c),
            "client {c} skipped by the epoch round"
        );
        // Sweep ordinals account for every sweep, gap-free, across both
        // drivers.
        let mut ords: Vec<u64> = e0
            .outcomes
            .iter()
            .chain(w.outcomes.iter())
            .chain(e1.outcomes.iter())
            .filter(|o| o.client == c)
            .map(|o| o.sweep)
            .collect();
        ords.sort_unstable();
        let expect: Vec<u64> = (0..ords.len() as u64).collect();
        assert_eq!(ords, expect, "client {c} ordinals must be contiguous");
    }
}

/// Under 3x overload through the ingestion front-end, the admission
/// queue's per-class FIFO keeps service even: the max/min ratio of
/// admitted sweeps across the honest walkers stays within 2. Shedding
/// concentrates on the BACKGROUND class, not on unlucky individuals.
#[test]
fn overload_admission_is_fair_across_clients() {
    use chronos_bench::soak::{run_soak, SoakScenarioConfig};
    let run = run_soak(&SoakScenarioConfig::at_load(41, 3, 4, 250));
    let counts = run.walker_sweeps();
    let max = *counts.iter().max().unwrap();
    let min = *counts.iter().min().unwrap();
    assert!(min > 0, "a walker was starved outright: {counts:?}");
    assert!(
        max as f64 / min as f64 <= 2.0,
        "admitted-sweep spread {counts:?} exceeds 2x"
    );
    // The run must actually be in overload for the bound to mean much.
    let shed: u64 = run.reports.iter().map(|r| r.ingestion.shed.total()).sum();
    assert!(shed > 0, "3x run shed nothing — not an overload test");
}

/// The engine's thread-count determinism contract survives the
/// ingestion path: with the queue actively shedding and stretching at
/// 3x overload, `WindowReport`s — outcomes with their class/deferral
/// annotations plus the per-window ingestion counters — are bitwise
/// identical across worker-thread counts {1, 2, 8}.
#[test]
fn window_reports_identical_across_threads_with_shedding() {
    use chronos_bench::soak::{run_soak, SoakScenarioConfig};
    let fingerprint = |threads: usize| {
        let cfg = SoakScenarioConfig {
            threads,
            ..SoakScenarioConfig::at_load(41, 3, 3, 250)
        };
        let run = run_soak(&cfg);
        let mut fp = Vec::new();
        let mut shed_total = 0;
        for r in &run.reports {
            let ing = &r.ingestion;
            shed_total += ing.shed.total();
            fp.push(format!(
                "W {:?} {:?} {:?} {:?} {} {} {}",
                ing.offered,
                ing.admitted,
                ing.deferred,
                ing.shed,
                ing.queue_peak_total,
                ing.stretch_peak.to_bits(),
                r.bands_planned
            ));
            for o in &r.outcomes {
                fp.push(format!(
                    "O {} {} {} {} {} {} {:?} {:?}",
                    o.client,
                    o.sweep,
                    o.class,
                    o.deferrals,
                    o.started.as_nanos(),
                    o.finished.as_nanos(),
                    o.distance_m.map(f64::to_bits),
                    o.tracked_m.map(f64::to_bits),
                ));
            }
        }
        (fp, shed_total)
    };
    let (one, shed) = fingerprint(1);
    assert!(shed > 0, "3x run shed nothing — contract untested");
    assert_eq!(one, fingerprint(2).0, "threads=2 diverged");
    assert_eq!(one, fingerprint(8).0, "threads=8 diverged");
}

/// Handoff state migration, engine level: a client extracted mid-TRACK
/// carries its Kalman filter and anomaly score into the destination
/// engine and resumes in TRACK — the first post-migration sweep plans
/// the TRACK subset, with no re-ACQUIRE (the contract the fleet layer's
/// `migrate_state` handoff is built on).
#[test]
fn migrated_client_resumes_in_track_with_its_anomaly_score() {
    use chronos_suite::core::engine::ServiceEngine;

    let cfg = ServiceConfig::adaptive(TrackerConfig::default());
    let mut a = ServiceEngine::new(cfg.clone());
    let c = a.join(ideal_ctx(3.0), quick_chronos());
    a.session_mut(c).sweep_cfg.medium.loss_prob = 0.0;
    a.run_until(21, Instant::from_millis(800));
    assert_eq!(
        a.tracker(c).expect("adaptive slot").mode(),
        TrackMode::Track,
        "client must be mid-TRACK before the handoff"
    );

    let state = a.extract_client(c).expect("active client extracts");
    assert_eq!(state.mode(), Some(TrackMode::Track));
    let score = state.anomaly_score().expect("tracked client has a score");
    assert!(score.is_finite());
    assert!(!a.is_active(c), "extraction vacates the source slot");

    // Same client-AP distance at the destination, so the distance
    // filter's state stays valid verbatim.
    let mut b = ServiceEngine::new(cfg);
    let m = b.join_migrated(ideal_ctx(3.0), quick_chronos(), state);
    b.session_mut(m).sweep_cfg.medium.loss_prob = 0.0;
    // The score and verdict are implanted before any sweep runs.
    assert_eq!(b.anomaly_score(m).map(f64::to_bits), Some(score.to_bits()));
    assert!(!b.is_quarantined(m));

    let report = b.run_until(22, Instant::from_millis(400));
    let first = report
        .outcomes
        .iter()
        .find(|o| o.client == m)
        .expect("migrated client sweeps in the first window");
    assert_eq!(first.sweep, 0, "destination ordinal restarts at zero");
    assert_eq!(
        first.mode,
        TrackMode::Track,
        "migrated Kalman state must carry TRACK across the handoff"
    );
    // The filter state is genuinely warm: the fused estimate is tight
    // from the very first destination sweep.
    let tracked = first.tracked_m.expect("adaptive outcome fuses");
    assert!((tracked - 3.0).abs() < 0.5, "cold filter: {tracked}");
}

/// The quarantine verdict travels with the migrated client: a client
/// quarantined at the source engine is still quarantined at the
/// destination, its outcomes stay flagged, and estimates stay withheld
/// (no handoff-laundering of an attacker's reputation).
#[test]
fn migrated_client_keeps_quarantine_verdict() {
    use chronos_suite::core::engine::ServiceEngine;
    use chronos_suite::core::service::QuarantineConfig;

    // A hair-trigger policy so the mechanism (not the detector) is
    // under test: any completed sweep trips quarantine, release is
    // unreachable.
    let cfg = ServiceConfig {
        quarantine: Some(QuarantineConfig {
            threshold: 0.0,
            release: -1.0,
            release_dwell: 1_000_000,
            min_sweeps: 0,
        }),
        ..ServiceConfig::adaptive(TrackerConfig::default())
    };
    let mut a = ServiceEngine::new(cfg.clone());
    let c = a.join(ideal_ctx(4.0), quick_chronos());
    a.run_until(31, Instant::from_millis(300));
    assert!(a.is_quarantined(c), "hair-trigger policy must have tripped");

    let state = a.extract_client(c).expect("active client extracts");
    assert!(state.is_quarantined(), "verdict travels with the state");

    let mut b = ServiceEngine::new(cfg);
    let m = b.join_migrated(ideal_ctx(4.0), quick_chronos(), state);
    assert!(b.is_quarantined(m), "verdict implanted before any sweep");
    let report = b.run_until(32, Instant::from_millis(300));
    let sweeps: Vec<_> = report.outcomes.iter().filter(|o| o.client == m).collect();
    assert!(!sweeps.is_empty(), "quarantined clients keep sweeping");
    for o in &sweeps {
        assert!(o.quarantined, "outcome lost the quarantine flag");
        assert!(
            o.tracked_m.is_none(),
            "quarantined estimates must stay withheld after migration"
        );
    }
}

/// Churn during a handoff: while one client migrates in, another leaves
/// and a third joins cold at the same boundary. The migrated client
/// still resumes in TRACK, the leaver gets no post-boundary admissions,
/// the joiner ACQUIREs from scratch, and slot ordinals stay gapless —
/// boundary churn cannot corrupt per-slot sweep accounting.
#[test]
fn churn_during_handoff_keeps_accounting_and_track_state() {
    use chronos_suite::core::engine::ServiceEngine;

    let cfg = ServiceConfig::adaptive(TrackerConfig::default());
    // Source engine: one client converging to TRACK.
    let mut a = ServiceEngine::new(cfg.clone());
    let c = a.join(ideal_ctx(3.0), quick_chronos());
    a.session_mut(c).sweep_cfg.medium.loss_prob = 0.0;
    a.run_until(41, Instant::from_millis(800));
    assert_eq!(a.tracker(c).unwrap().mode(), TrackMode::Track);

    // Destination engine: two residents, run to the same boundary.
    let mut b = ServiceEngine::new(cfg);
    let r0 = b.join(ideal_ctx(2.0), quick_chronos());
    let r1 = b.join(ideal_ctx(5.5), quick_chronos());
    for id in [r0, r1] {
        b.session_mut(id).sweep_cfg.medium.loss_prob = 0.0;
    }
    b.run_until(42, Instant::from_millis(800));
    let boundary = b.clock();

    // The churn burst: r1 leaves, the TRACK client migrates in, a cold
    // client joins — all at one boundary.
    b.leave(r1);
    let state = a.extract_client(c).unwrap();
    let m = b.join_migrated(ideal_ctx(3.0), quick_chronos(), state);
    let fresh = b.join(ideal_ctx(7.0), quick_chronos());
    for id in [m, fresh] {
        b.session_mut(id).sweep_cfg.medium.loss_prob = 0.0;
    }
    assert_eq!(b.n_slots(), 4, "slots are never reused");

    let report = b.run_until(43, Instant::from_millis(1_600));
    let of = |id: usize| report.outcomes.iter().filter(move |o| o.client == id);
    // The leaver: at most an in-flight sweep admitted pre-boundary.
    assert!(
        of(r1).all(|o| o.started < boundary),
        "left client admitted post-boundary"
    );
    // The migrant: TRACK from its first destination sweep.
    assert_eq!(of(m).next().expect("migrant sweeps").mode, TrackMode::Track);
    // The joiner: a cold filter ACQUIREs first.
    assert_eq!(
        of(fresh).next().expect("joiner sweeps").mode,
        TrackMode::Acquire
    );
    // The resident keeps uninterrupted service through the churn.
    assert!(of(r0).count() >= 5, "resident starved by boundary churn");
    // Per-slot ordinals are gapless for everyone who swept this window.
    for id in [r0, m, fresh] {
        let ords: Vec<u64> = of(id).map(|o| o.sweep).collect();
        let base = ords.first().copied().unwrap_or(0);
        for (k, o) in ords.iter().enumerate() {
            assert_eq!(*o, base + k as u64, "ordinal gap for slot {id}");
        }
    }
}
