//! Ablation-style integration tests for the adaptive sweep scheduler and
//! the online distance tracker: TRACK-mode subset sweeps must stay within
//! a bounded factor of the full-sweep baseline, track breaks must force
//! re-acquisition, and the arbiter's airtime accounting must charge each
//! variable-length sweep exactly once.

use chronos_suite::core::config::ChronosConfig;
use chronos_suite::core::service::{RangingService, ServiceConfig};
use chronos_suite::core::tracker::{TrackMode, TrackerConfig};
use chronos_suite::link::arbiter::{ArbiterConfig, MediumArbiter};
use chronos_suite::link::sweep::SweepConfig;
use chronos_suite::link::time::{Duration, Instant};
use chronos_suite::rf::csi::MeasurementContext;
use chronos_suite::rf::environment::Environment;
use chronos_suite::rf::geometry::Point;
use chronos_suite::rf::hardware::{ideal_device, AntennaArray};

fn ideal_ctx(d: f64) -> MeasurementContext {
    let mut ctx = MeasurementContext::new(
        Environment::free_space(),
        ideal_device(AntennaArray::single()),
        Point::new(0.0, 0.0),
        ideal_device(AntennaArray::laptop()),
        Point::new(d, 0.0),
    );
    ctx.snr.snr_at_1m_db = 60.0;
    ctx
}

fn service(adaptive: bool, distances: &[f64]) -> RangingService {
    let cfg = if adaptive {
        ServiceConfig::adaptive(TrackerConfig::default())
    } else {
        ServiceConfig::default()
    };
    let mut svc = RangingService::new(cfg);
    for &d in distances {
        let id = svc.add_client(ideal_ctx(d), ChronosConfig::ideal());
        svc.client_mut(id).sweep_cfg.medium.loss_prob = 0.0;
    }
    svc
}

/// Static clients: adaptive TRACK-mode error stays within 2x of the
/// full-sweep baseline while throughput at least doubles.
#[test]
fn adaptive_static_error_bounded_and_throughput_doubles() {
    let distances = [2.0, 3.5, 5.0, 6.5];
    let epochs = 10;

    let mut full = service(false, &distances);
    let mut full_errs = Vec::new();
    let mut full_tp = Vec::new();
    for e in 0..epochs {
        let r = full.run_epoch(900 + e);
        full_errs.extend(r.outcomes.iter().filter_map(|o| o.error_m));
        full_tp.push(r.sweeps_per_sec_airtime());
    }
    let full_mae = full_errs.iter().sum::<f64>() / full_errs.len() as f64;
    let full_rate = full_tp.iter().sum::<f64>() / full_tp.len() as f64;

    let mut adaptive = service(true, &distances);
    let mut track_errs = Vec::new();
    let mut track_tp = Vec::new();
    for e in 0..epochs {
        let r = adaptive.run_epoch(900 + e);
        let occ = r.mode_occupancy();
        if occ.acquire == 0 && occ.track == distances.len() {
            track_errs.extend(r.outcomes.iter().filter_map(|o| o.error_m));
            track_tp.push(r.sweeps_per_sec_airtime());
            assert!(
                r.airtime_saved() > 0.5,
                "airtime saved {}",
                r.airtime_saved()
            );
        }
    }
    assert!(
        track_tp.len() >= epochs as usize - 3,
        "too few steady epochs"
    );
    let track_mae = track_errs.iter().sum::<f64>() / track_errs.len() as f64;
    let track_rate = track_tp.iter().sum::<f64>() / track_tp.len() as f64;

    assert!(
        track_mae <= 2.0 * full_mae + 1e-3,
        "TRACK MAE {track_mae} vs full {full_mae}"
    );
    assert!(
        track_rate >= 2.0 * full_rate,
        "adaptive {track_rate} sweeps/s vs full {full_rate}"
    );
}

/// A walking client: the tracker's fused output follows the motion and
/// the scheduler stays in TRACK (no spurious re-acquisitions).
#[test]
fn adaptive_moving_client_stays_tracked() {
    let mut svc = service(true, &[4.0]);
    let mut prev_span = None;
    let mut worst_tracked_err: f64 = 0.0;
    let mut track_epochs = 0;
    for e in 0..14u64 {
        // 1.2 m/s away from the locator, in simulated time.
        if let Some(span_s) = prev_span {
            let x = svc.client(0).ctx.initiator_pos.x - 1.2 * (span_s + 0.005);
            svc.client_mut(0).ctx.initiator_pos = Point::new(x, 0.0);
        }
        let r = svc.run_epoch(3100 + e);
        prev_span = Some(r.airtime_span.as_secs_f64());
        let o = &r.outcomes[0];
        if o.mode == TrackMode::Track {
            track_epochs += 1;
            if let Some(err) = o.tracked_error_m {
                worst_tracked_err = worst_tracked_err.max(err);
            }
        }
    }
    assert!(track_epochs >= 10, "only {track_epochs} TRACK epochs");
    assert!(
        worst_tracked_err < 0.5,
        "worst tracked error {worst_tracked_err}"
    );
    let v = svc.tracker(0).unwrap().filter().velocity().unwrap();
    assert!((v - 1.2).abs() < 0.4, "velocity estimate {v}");
}

/// A teleporting client trips the innovation gate: the service drops it
/// back to ACQUIRE (full sweeps), then re-promotes at the new location.
#[test]
fn teleport_forces_reacquire_then_repromotes() {
    let mut svc = service(true, &[8.0]);
    for e in 0..4 {
        svc.run_epoch(4200 + e);
    }
    assert_eq!(svc.tracker(0).unwrap().mode(), TrackMode::Track);

    // Teleport: the mobile endpoint jumps 5 m closer between epochs.
    svc.client_mut(0).ctx.initiator_pos = Point::new(5.0, 0.0);
    let r = svc.run_epoch(4300);
    let o = &r.outcomes[0];
    assert_eq!(o.mode, TrackMode::Track, "the jump lands on a TRACK epoch");
    assert!(
        o.innovation_sigmas.expect("fix fused or gated") > TrackerConfig::default().gate_sigma,
        "teleport must exceed the gate: {:?}",
        o.innovation_sigmas
    );
    assert_eq!(
        svc.tracker(0).unwrap().mode(),
        TrackMode::Acquire,
        "gate must demote"
    );

    // Full-sweep re-acquisition at the new spot, then back to TRACK.
    let mut modes = Vec::new();
    for e in 0..3 {
        let r = svc.run_epoch(4400 + e);
        modes.push(r.outcomes[0].mode);
    }
    assert_eq!(modes[0], TrackMode::Acquire);
    assert_eq!(
        svc.tracker(0).unwrap().mode(),
        TrackMode::Track,
        "re-promotion after streak"
    );
    let tracked = svc
        .tracker(0)
        .unwrap()
        .filter()
        .predicted_distance()
        .unwrap();
    assert!(
        (tracked - 3.0).abs() < 0.3,
        "re-converged at {tracked}, truth 3.0"
    );
}

/// Variable-length subset plans must be charged their own airtime,
/// exactly once: projections come from the plan's expected duration and
/// completion replaces (never duplicates) the window.
#[test]
fn subset_plans_never_double_count_airtime() {
    // Arbiter-level: mixed-length windows sum exactly.
    let mut arb = MediumArbiter::new(ArbiterConfig::default());
    let full = SweepConfig::standard().expected_duration();
    let mut sub_cfg = SweepConfig::standard();
    sub_cfg.plan.truncate(12);
    let sub = sub_cfg.expected_duration();
    let a = arb.admit(Instant::ZERO, full);
    let b = arb.admit(Instant::ZERO, sub);
    assert_eq!(arb.total_tracked_airtime(), full + sub);
    arb.complete(a.token, a.start + full);
    arb.complete(b.token, b.start + sub);
    arb.complete(b.token, b.start + sub); // idempotent
    assert_eq!(arb.total_tracked_airtime(), full + sub);

    // Service-level: in adaptive steady state the epoch span shrinks to
    // subset scale — impossible if subset sweeps were still charged (or
    // double-charged) full-sweep windows.
    let mut svc = service(true, &[3.0]);
    let mut last = None;
    for e in 0..6 {
        last = Some(svc.run_epoch(5500 + e));
    }
    let r = last.unwrap();
    assert_eq!(r.mode_occupancy().track, 1);
    let span = r.airtime_span;
    assert!(
        span < Duration::from_millis(45),
        "steady-state span {span} should be subset-sized (full sweep is ~84 ms)"
    );
    assert!(
        span > Duration::from_millis(15),
        "span {span} suspiciously small"
    );
}

/// The adaptive service remains deterministic: same seeds, same mode
/// transitions, same fused outputs.
#[test]
fn adaptive_service_is_deterministic() {
    let run = || {
        let mut svc = service(true, &[2.5, 6.0]);
        let mut fingerprint = Vec::new();
        for e in 0..6 {
            let r = svc.run_epoch(777 + e);
            for o in &r.outcomes {
                fingerprint.push((
                    o.client,
                    o.mode,
                    o.bands_planned,
                    o.distance_m.map(f64::to_bits),
                    o.tracked_m.map(f64::to_bits),
                ));
            }
        }
        fingerprint
    };
    assert_eq!(run(), run());
}
