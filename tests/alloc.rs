//! Allocation-budget tests for the sweep pipeline: the zero-alloc
//! contract of `docs/PIPELINE.md`, enforced with a counting global
//! allocator, plus the bitwise-equivalence proptest between the scratch
//! solver and the allocating solver.
//!
//! The contract under test: once a [`SweepPipeline`]'s scratch arena is
//! warm, the estimation path — products → NDFT/ISTA → profile →
//! first-path selection → CLEAN refinement → fusion, and per-antenna
//! localization — performs **zero heap allocations** for steady-state
//! TRACK subset sweeps, and stays allocation-free (after its own
//! warm-up) for full-plan ACQUIRE sweeps too.

use chronos_bench::alloc_count::{thread_allocations, CountingAlloc};
use chronos_suite::core::config::ChronosConfig;
use chronos_suite::core::ista::{solve_planned, solve_planned_into, IstaConfig, IstaScratch};
use chronos_suite::core::localization::{AntennaRange, LocalizerConfig, Position};
use chronos_suite::core::ndft::TauGrid;
use chronos_suite::core::plan::{NdftPlan, PlanCache};
use chronos_suite::core::reciprocity::BandProduct;
use chronos_suite::core::tof::{genie_product, TofEstimator};
use chronos_suite::core::SweepPipeline;
use chronos_suite::math::constants::m_to_ns;
use chronos_suite::math::Complex64;
use chronos_suite::rf::bands::{band_plan, band_plan_5ghz};
use chronos_suite::rf::geometry::Point;
use chronos_suite::rf::hardware::AntennaArray;
use chronos_suite::rf::subset::select_subset;
use proptest::prelude::*;
use std::sync::Arc;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

fn track_products(client: usize) -> Vec<BandProduct> {
    let subset = select_subset(&band_plan_5ghz(), 12, 100.0);
    let tau = m_to_ns(2.0 + 0.75 * client as f64);
    subset
        .iter()
        .map(|b| genie_product(b.center_hz, &[(tau, 1.0), (tau + 5.0, 0.4)], 2.0))
        .collect()
}

fn acquire_products(client: usize) -> Vec<BandProduct> {
    // The full Intel-style plan: 5 GHz squared channels at scale 2 plus
    // the quirked 2.4 GHz group at scale 8 — two delay-scale groups, so
    // the ACQUIRE path exercises grouping, both inversions and the
    // cross-check.
    let tau = m_to_ns(2.0 + 0.75 * client as f64);
    band_plan()
        .iter()
        .map(|b| {
            let scale = if b.group.is_2g4() { 8.0 } else { 2.0 };
            genie_product(b.center_hz, &[(tau, 1.0), (tau + 5.0, 0.4)], scale)
        })
        .collect()
}

/// Steady-state TRACK estimation must perform zero heap allocations once
/// the pipeline's scratch arena is warm.
#[test]
fn steady_state_track_estimation_is_allocation_free() {
    let estimator = TofEstimator::with_cache(ChronosConfig::ideal(), Arc::new(PlanCache::new()));
    let products: Vec<Vec<BandProduct>> = (0..8).map(track_products).collect();
    let mut pipeline = SweepPipeline::new();
    // Warm-up: grow every buffer and memoize the plans.
    for _ in 0..2 {
        for ps in &products {
            pipeline.estimate_fix(&estimator, ps).expect("warmup fix");
        }
    }
    let before = thread_allocations();
    let mut distance = 0.0;
    for _ in 0..5 {
        for ps in &products {
            let fix = pipeline.estimate_fix(&estimator, ps).expect("fix");
            distance += fix.distance_m;
        }
    }
    let allocs = thread_allocations() - before;
    assert_eq!(
        allocs, 0,
        "steady-state TRACK estimation allocated {allocs} times over 40 sweeps"
    );
    assert!(distance > 0.0);
}

/// ACQUIRE (full-plan, two delay-scale groups) sweeps must be bounded:
/// after their own warm-up they are allocation-free as well — the arena
/// simply grows once to the full-plan size.
#[test]
fn acquire_estimation_is_allocation_free_after_warmup() {
    let estimator = TofEstimator::with_cache(ChronosConfig::default(), Arc::new(PlanCache::new()));
    let products: Vec<Vec<BandProduct>> = (0..4).map(acquire_products).collect();
    let mut pipeline = SweepPipeline::new();
    for _ in 0..2 {
        for ps in &products {
            pipeline.estimate_fix(&estimator, ps).expect("warmup fix");
        }
    }
    let before = thread_allocations();
    for _ in 0..3 {
        for ps in &products {
            pipeline.estimate_fix(&estimator, ps).expect("fix");
        }
    }
    let allocs = thread_allocations() - before;
    assert_eq!(
        allocs, 0,
        "warm ACQUIRE estimation allocated {allocs} times over 12 sweeps"
    );
}

/// A warm pipeline's localization (the Gauss–Newton circle fit) is
/// allocation-free into a reused candidate buffer.
#[test]
fn localization_is_allocation_free_with_warm_scratch() {
    let array = AntennaArray::access_point();
    let tx = Point::new(1.5, 3.0);
    let ranges: Vec<AntennaRange> = array
        .positions()
        .iter()
        .map(|a| AntennaRange {
            antenna: *a,
            distance_m: a.dist(tx),
        })
        .collect();
    let cfg = LocalizerConfig::default();
    let mut pipeline = SweepPipeline::new();
    let mut out: Vec<Position> = Vec::new();
    for _ in 0..2 {
        pipeline
            .locate_all(&ranges, &cfg, &mut out)
            .expect("warmup");
    }
    let before = thread_allocations();
    for _ in 0..20 {
        pipeline
            .locate_all(&ranges, &cfg, &mut out)
            .expect("locate");
    }
    let allocs = thread_allocations() - before;
    assert_eq!(allocs, 0, "warm localization allocated {allocs} times");
    assert!(out[0].point.dist(tx) < 1e-3);
}

/// The engine path built on the pipeline: a steady-state continuous
/// window's allocations per sweep stay bounded. (CSI synthesis, the link
/// simulation and report assembly still allocate — the estimator no
/// longer does; this pins the integration at a coarse level so a
/// per-iteration regression anywhere in the sweep path is caught.)
#[test]
fn engine_window_allocations_per_sweep_bounded() {
    use chronos_suite::core::service::{RangingService, ServiceConfig};
    use chronos_suite::core::tracker::TrackerConfig;
    use chronos_suite::link::time::Instant;
    use chronos_suite::rf::csi::MeasurementContext;
    use chronos_suite::rf::environment::Environment;
    use chronos_suite::rf::hardware::ideal_device;

    let mut ctx = MeasurementContext::new(
        Environment::free_space(),
        ideal_device(AntennaArray::single()),
        Point::new(0.0, 0.0),
        ideal_device(AntennaArray::laptop()),
        Point::new(3.0, 0.0),
    );
    ctx.snr.snr_at_1m_db = 60.0;
    let mut svc = RangingService::new(ServiceConfig::adaptive(TrackerConfig::default()));
    let coarse = ChronosConfig {
        max_iters: 120,
        grid_step_ns: 0.5,
        ..ChronosConfig::ideal()
    };
    let id = svc.add_client(ctx, coarse);
    svc.client_mut(id).sweep_cfg.medium.loss_prob = 0.0;
    // Warm window: promote to TRACK, grow the worker pipeline's arena.
    svc.run_until(3, Instant::from_millis(500));
    let before = thread_allocations();
    let w = svc.run_until(3, Instant::from_millis(1500));
    let allocs = thread_allocations() - before;
    assert!(w.completed() >= 10, "window too quiet: {}", w.completed());
    let per_sweep = allocs as f64 / w.completed() as f64;
    assert!(
        per_sweep < 2000.0,
        "{per_sweep:.0} allocs/sweep — the sweep path regressed badly"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `solve_planned_into` must equal `solve_planned` bit for bit —
    /// solution, iteration count, convergence flag and residual — across
    /// random band plans, grids and channels, including a *reused*
    /// (dirty) scratch.
    #[test]
    fn solve_planned_into_is_bitwise_solve_planned(
        n_freqs in 5usize..12,
        span_ns in 20.0f64..60.0,
        step_x2 in 1usize..3,
        tau_list in proptest::collection::vec(1.0f64..18.0, 1..4),
        amp_list in proptest::collection::vec(0.1f64..1.0, 3..4),
        accel_bit in 0usize..2,
    ) {
        let taus: Vec<(f64, f64)> = tau_list
            .iter()
            .zip(amp_list.iter().cycle())
            .map(|(t, a)| (*t, *a))
            .collect();
        let accelerated = accel_bit == 1;
        let freqs: Vec<f64> = (0..n_freqs)
            .map(|i| 5.18e9 + i as f64 * 37.3e6 + (i * i) as f64 * 1.1e6)
            .collect();
        let grid = TauGrid::span(span_ns, 0.5 * step_x2 as f64);
        let plan = NdftPlan::new(&freqs, grid, span_ns);
        let h: Vec<Complex64> = freqs
            .iter()
            .map(|f| {
                let mut acc = Complex64::ZERO;
                for (tau, a) in &taus {
                    acc += Complex64::from_polar(
                        *a,
                        -2.0 * std::f64::consts::PI * f * tau * 1e-9,
                    );
                }
                acc
            })
            .collect();
        let cfg = IstaConfig { accelerated, max_iters: 150, ..IstaConfig::default() };

        let reference = solve_planned(&plan, &h, &cfg);
        let mut scratch = IstaScratch::new();
        // Dirty the scratch with a different problem first: reuse must
        // not leak state.
        let other = TauGrid::span(10.0, 1.0);
        let other_plan = NdftPlan::new(&freqs[..5], other, 10.0);
        solve_planned_into(&other_plan, &h[..5], &cfg, &mut scratch);

        let stats = solve_planned_into(&plan, &h, &cfg, &mut scratch);
        prop_assert_eq!(stats.iterations, reference.iterations);
        prop_assert_eq!(stats.converged, reference.converged);
        prop_assert_eq!(stats.residual.to_bits(), reference.residual.to_bits());
        prop_assert_eq!(scratch.solution().len(), reference.p.len());
        for (a, b) in scratch.solution().iter().zip(reference.p.iter()) {
            prop_assert_eq!(a.re.to_bits(), b.re.to_bits());
            prop_assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
    }
}
